#include "service/load.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include <memory>

#include "obs/flight.hpp"
#include "obs/journal.hpp"
#include "obs/rolling.hpp"
#include "obs/telemetry.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"
#include "service/manager.hpp"
#include "util/error.hpp"

namespace heimdall::service {

namespace {

/// One scripted ticket: which device it touches and the console lines the
/// technician runs inside the twin.
struct ScriptedTicket {
  msp::Ticket ticket;
  std::vector<std::string> script;
  bool violating = false;
};

ScriptedTicket scripted_ticket(const LoadSpec& spec, const std::vector<net::DeviceId>& routers,
                               const net::DeviceId& guard, const std::string& guard_acl,
                               const std::string& violating_entry, std::size_t index) {
  ScriptedTicket out;
  out.ticket.id = static_cast<int>(index + 1);
  out.ticket.task = priv::TaskClass::AclChange;
  out.violating =
      spec.violating_every != 0 && (index + 1) % spec.violating_every == 0;
  if (out.violating) {
    // An over-eager "fix": permit a filtered subnet straight through the
    // scenario's guarded ACL. The twin accepts it (no policies there); the
    // enforcer must quarantine exactly this entry.
    out.ticket.description = "open access through " + guard_acl;
    out.ticket.affected = {guard};
    out.script = {"acl " + guard.str() + " " + guard_acl + " add 0 " + violating_entry};
    return out;
  }
  const net::DeviceId& router = routers[(index + spec.seed) % routers.size()];
  // The ACL name is unique per ticket so repeated tickets against the same
  // router replay cleanly (an existing ACL makes creation fail).
  std::string acl = "LG" + std::to_string(index + 1);
  out.ticket.description = "tighten ingress filtering (documentation prefixes)";
  out.ticket.affected = {router};
  out.script = {
      "acl " + router.str() + " create " + acl,
      "acl " + router.str() + " " + acl + " add deny ip 198.51.100.0 0.0.0.255 192.0.2.0 0.0.0.255",
  };
  return out;
}

}  // namespace

std::string to_string(LoadNetwork network) {
  return network == LoadNetwork::Enterprise ? "enterprise" : "university";
}

LoadReport run_load(const LoadSpec& spec) {
  const bool enterprise = spec.network == LoadNetwork::Enterprise;
  net::Network production =
      enterprise ? scen::build_enterprise() : scen::build_university();
  std::vector<spec::Policy> policies =
      enterprise ? scen::enterprise_policies(production) : scen::university_policies(production);
  const net::DeviceId guard(enterprise ? "r9" : "u13");
  const std::string guard_acl = enterprise ? "DMZ_IN" : "SEC_IN";
  const std::string violating_entry =
      enterprise ? "permit ip 10.0.20.0 0.0.0.255 10.0.8.0 0.0.0.255"
                 : "permit ip 10.20.7.0 0.0.0.255 10.20.15.0 0.0.0.255";

  std::vector<net::DeviceId> routers;
  for (const net::Device& device : production.devices()) {
    if (device.is_router() && device.id() != guard) routers.push_back(device.id());
  }
  if (routers.empty()) throw util::Error("load network has no scriptable routers");

  ServiceOptions options;
  options.max_batch = spec.serialized ? 1 : spec.max_batch;
  options.coalesce_waves = !spec.serialized;
  options.artifact_cache_capacity = spec.artifact_cache_capacity;
  options.journal_enabled = spec.journal || !spec.statusz_out.empty();
  SessionManager manager(std::move(production), std::move(policies), options);
  std::unique_ptr<StatuszWriter> statusz;
  if (!spec.statusz_out.empty()) {
    statusz = std::make_unique<StatuszWriter>(manager, spec.statusz_out,
                                              spec.statusz_period_ms);
  }

  struct PerThread {
    std::vector<double> latencies_ms;
    std::size_t applied = 0;
    std::size_t quarantined = 0;
    std::size_t stale = 0;
    std::size_t violating = 0;
    std::uint64_t queue_wait_us = 0;
    std::uint64_t analyze_us = 0;
    std::uint64_t verify_us = 0;
    std::uint64_t audit_us = 0;
  };
  std::size_t technicians = std::max<std::size_t>(1, spec.technicians);
  std::vector<PerThread> per_thread(technicians);
  std::atomic<std::size_t> next_ticket{0};

  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(technicians);
  for (std::size_t t = 0; t < technicians; ++t) {
    workers.emplace_back([&, t] {
      PerThread& mine = per_thread[t];
      std::string actor = "tech-" + std::to_string(t + 1);
      for (;;) {
        std::size_t index = next_ticket.fetch_add(1, std::memory_order_relaxed);
        if (index >= spec.tickets) return;
        ScriptedTicket scripted =
            scripted_ticket(spec, routers, guard, guard_acl, violating_entry, index);
        auto ticket_start = std::chrono::steady_clock::now();
        auto session = manager.open(scripted.ticket, actor);
        session->run_script(scripted.script);
        SubmitOutcome outcome = session->submit().get();
        session->close();
        auto ticket_end = std::chrono::steady_clock::now();
        mine.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(ticket_end - ticket_start).count());
        mine.applied += outcome.report.applied_changes.size();
        mine.quarantined += outcome.report.quarantined.size();
        mine.queue_wait_us += outcome.queue_wait_us;
        mine.analyze_us += outcome.report.stages.analyze_us;
        mine.verify_us += outcome.report.stages.verify_us;
        mine.audit_us += outcome.report.stages.audit_us;
        if (!outcome.stale_devices.empty()) ++mine.stale;
        if (scripted.violating) ++mine.violating;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  manager.drain();
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  LoadReport report;
  report.tickets = spec.tickets;
  report.wall_seconds = wall_seconds;
  report.throughput_tps =
      wall_seconds > 0 ? static_cast<double>(spec.tickets) / wall_seconds : 0.0;

  std::vector<double> latencies;
  std::uint64_t total_queue_wait = 0, total_analyze = 0, total_verify = 0, total_audit = 0;
  for (const PerThread& mine : per_thread) {
    latencies.insert(latencies.end(), mine.latencies_ms.begin(), mine.latencies_ms.end());
    report.applied_changes += mine.applied;
    report.quarantined_changes += mine.quarantined;
    report.stale_sessions += mine.stale;
    report.violating_tickets += mine.violating;
    total_queue_wait += mine.queue_wait_us;
    total_analyze += mine.analyze_us;
    total_verify += mine.verify_us;
    total_audit += mine.audit_us;
  }
  if (spec.tickets > 0) {
    double n = static_cast<double>(spec.tickets);
    report.mean_queue_wait_us = static_cast<double>(total_queue_wait) / n;
    report.mean_analyze_us = static_cast<double>(total_analyze) / n;
    report.mean_verify_us = static_cast<double>(total_verify) / n;
    report.mean_audit_us = static_cast<double>(total_audit) / n;
  }
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double q) {
    if (latencies.empty()) return 0.0;
    std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(latencies.size() - 1));
    return latencies[rank];
  };
  report.p50_ms = percentile(0.50);
  report.p95_ms = percentile(0.95);
  report.p99_ms = percentile(0.99);
  report.max_ms = latencies.empty() ? 0.0 : latencies.back();
  double total = 0;
  for (double latency : latencies) total += latency;
  report.mean_ms = latencies.empty() ? 0.0 : total / static_cast<double>(latencies.size());

  ServiceStats stats = manager.stats();
  report.batches = stats.batches;
  report.mean_batch =
      stats.batches > 0 ? static_cast<double>(stats.submissions) / static_cast<double>(stats.batches)
                        : 0.0;
  report.max_batch_observed = stats.max_observed_batch;
  report.artifact_hits = stats.artifact_hits;
  report.artifact_misses = stats.artifact_misses;
  report.audit_intact = manager.enforcer().audit_intact();
  report.audit_entries = manager.enforcer().audit().size();
  enforce::PolicyEnforcer::LedgerStats ledger_stats = manager.enforcer().ledger_stats();
  report.audit_replicas = ledger_stats.replicas;
  report.quorum_commits = ledger_stats.commits;
  report.quorum_failures = ledger_stats.quorum_failures;
  report.rejected_acks = ledger_stats.rejected_acks;
  report.slo_breaches = obs::SloTracker::global().total_breaches();
  report.flight_dumps = obs::FlightRecorder::global().dumps();
  report.journal_events = obs::EventJournal::global().appended();

  // The statusz writer's final snapshot and the audit export must happen
  // before the manager (and its sealed chain) goes out of scope.
  statusz.reset();
  if (!spec.audit_out.empty()) {
    obs::write_string_file(spec.audit_out, manager.enforcer().ledger().to_json().dump(),
                           "audit ledger");
  }
  return report;
}

}  // namespace heimdall::service
