// load_gen: drives the heimdall enforcement service with N technician
// threads working M scripted tickets, and emits a JSON report of ticket
// latency percentiles, throughput, batching statistics and audit health.
//
//   load_gen --network university --technicians 8 --tickets 1000
//   load_gen --serialized            # one-enforcement-per-ticket baseline
//
// tools/bench_baseline.py merges the report into BENCH_micro.json as LG_*
// rows and asserts the service-level floors (audit chain intact, every
// ledger append quorum-committed, ticket count, concurrency).
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/journal.hpp"
#include "obs/telemetry.hpp"
#include "service/load.hpp"

namespace {

void usage() {
  std::cerr << "usage: load_gen [--network enterprise|university] [--technicians N]\n"
               "                [--tickets N] [--max-batch N] [--serialized]\n"
               "                [--violating-every N] [--seed N] [--out FILE]\n"
            << heimdall::obs::TelemetryFlags::usage();
}

std::string json_bool(bool value) { return value ? "true" : "false"; }

std::string report_json(const heimdall::service::LoadSpec& spec,
                        const heimdall::service::LoadReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"network\": \"" << heimdall::service::to_string(spec.network) << "\",\n";
  out << "  \"technicians\": " << spec.technicians << ",\n";
  out << "  \"serialized\": " << json_bool(spec.serialized) << ",\n";
  out << "  \"max_batch\": " << spec.max_batch << ",\n";
  out << "  \"tickets\": " << report.tickets << ",\n";
  out << "  \"applied_changes\": " << report.applied_changes << ",\n";
  out << "  \"quarantined_changes\": " << report.quarantined_changes << ",\n";
  out << "  \"violating_tickets\": " << report.violating_tickets << ",\n";
  out << "  \"stale_sessions\": " << report.stale_sessions << ",\n";
  out << "  \"wall_seconds\": " << report.wall_seconds << ",\n";
  out << "  \"throughput_tps\": " << report.throughput_tps << ",\n";
  out << "  \"p50_ms\": " << report.p50_ms << ",\n";
  out << "  \"p95_ms\": " << report.p95_ms << ",\n";
  out << "  \"p99_ms\": " << report.p99_ms << ",\n";
  out << "  \"mean_ms\": " << report.mean_ms << ",\n";
  out << "  \"max_ms\": " << report.max_ms << ",\n";
  out << "  \"batches\": " << report.batches << ",\n";
  out << "  \"mean_batch\": " << report.mean_batch << ",\n";
  out << "  \"max_batch_observed\": " << report.max_batch_observed << ",\n";
  out << "  \"artifact_hits\": " << report.artifact_hits << ",\n";
  out << "  \"artifact_misses\": " << report.artifact_misses << ",\n";
  out << "  \"audit_entries\": " << report.audit_entries << ",\n";
  out << "  \"audit_replicas\": " << report.audit_replicas << ",\n";
  out << "  \"quorum_commits\": " << report.quorum_commits << ",\n";
  out << "  \"quorum_failures\": " << report.quorum_failures << ",\n";
  out << "  \"rejected_acks\": " << report.rejected_acks << ",\n";
  out << "  \"mean_queue_wait_us\": " << report.mean_queue_wait_us << ",\n";
  out << "  \"mean_analyze_us\": " << report.mean_analyze_us << ",\n";
  out << "  \"mean_verify_us\": " << report.mean_verify_us << ",\n";
  out << "  \"mean_audit_us\": " << report.mean_audit_us << ",\n";
  out << "  \"slo_breaches\": " << report.slo_breaches << ",\n";
  out << "  \"flight_dumps\": " << report.flight_dumps << ",\n";
  out << "  \"journal_events\": " << report.journal_events << ",\n";
  out << "  \"audit_intact\": " << json_bool(report.audit_intact) << "\n";
  out << "}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  heimdall::service::LoadSpec spec;
  heimdall::obs::TelemetryFlags telemetry;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (telemetry.consume(argc, argv, i)) continue;
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--network") {
      std::string name = next();
      if (name == "enterprise")
        spec.network = heimdall::service::LoadNetwork::Enterprise;
      else if (name == "university")
        spec.network = heimdall::service::LoadNetwork::University;
      else {
        usage();
        return 2;
      }
    } else if (arg == "--technicians") {
      spec.technicians = std::stoul(next());
    } else if (arg == "--tickets") {
      spec.tickets = std::stoul(next());
    } else if (arg == "--max-batch") {
      spec.max_batch = std::stoul(next());
    } else if (arg == "--serialized") {
      spec.serialized = true;
    } else if (arg == "--violating-every") {
      spec.violating_every = std::stoul(next());
    } else if (arg == "--seed") {
      spec.seed = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }

  telemetry.apply();
  spec.journal = heimdall::obs::EventJournal::global().enabled();
  spec.statusz_out = telemetry.statusz_out;
  spec.statusz_period_ms = telemetry.statusz_period_ms;
  spec.audit_out = telemetry.audit_out;

  heimdall::service::LoadReport report = heimdall::service::run_load(spec);
  std::string json = report_json(spec, report);
  std::cout << json;
  if (!out_path.empty()) {
    std::ofstream file(out_path);
    file << json;
  }
  if (!telemetry.write_outputs()) {
    std::cerr << "FATAL: failed to write telemetry outputs\n";
    return 1;
  }
  if (!report.audit_intact) {
    std::cerr << "FATAL: audit chain not intact after load\n";
    return 1;
  }
  if (report.quorum_failures > 0) {
    std::cerr << "FATAL: " << report.quorum_failures << " audit appends missed quorum\n";
    return 1;
  }
  return 0;
}
