#!/usr/bin/env python3
"""Run the micro_perf benchmark suite and maintain BENCH_micro.json.

Usage:
    tools/bench_baseline.py [--binary build/bench/micro_perf]
                            [--out BENCH_micro.json]
                            [--filter REGEX] [--min-time SECONDS]
                            [--check-only]

The script runs micro_perf with --benchmark_format=json, extracts the
benchmarks into a stable baseline artifact (name -> real_time ns), and then
smoke-checks the compiled forwarding-plane paths against their reference
counterparts: a compiled path that is slower than its reference path (plus a
noise allowance) fails the run. --check-only re-checks an existing
BENCH_micro.json without running the binary.

Only the Python standard library is used.
"""

import argparse
import json
import subprocess
import sys

# Compiled path -> reference path it must not be slower than. The tolerance
# absorbs CI noise; a compiled path slower than reference * TOLERANCE is a
# regression in the whole point of the compiled plane.
SMOKE_PAIRS = {
    "BM_AllPairsCompiled/net:0": "BM_AllPairsReference/net:0",
    "BM_AllPairsCompiled/net:1": "BM_AllPairsReference/net:1",
    "BM_CompiledFlowTrace/net:0": "BM_FlowTrace/net:0",
    "BM_CompiledFlowTrace/net:1": "BM_FlowTrace/net:1",
    "BM_QuarantineIncremental/net:0": "BM_QuarantineCopy/net:0",
    "BM_QuarantineIncremental/net:1": "BM_QuarantineCopy/net:1",
}
TOLERANCE = 1.10

# Headline acceptance targets: (fast path, reference path, minimum speedup,
# label). Falling below any floor fails the run.
HEADLINES = [
    ("BM_AllPairsCompiled/net:1", "BM_AllPairsReference/net:1", 3.0,
     "all-pairs (university)"),
    ("BM_QuarantineIncremental/net:1", "BM_QuarantineCopy/net:1", 2.0,
     "quarantine enforcement (university)"),
]


def run_benchmarks(binary, bench_filter, min_time):
    cmd = [binary, "--benchmark_format=json", f"--benchmark_min_time={min_time}"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed with exit code {proc.returncode}")
    return json.loads(proc.stdout)


def to_baseline(report):
    benchmarks = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        benchmarks[bench["name"]] = {
            "real_time_ns": bench["real_time"],
            "cpu_time_ns": bench["cpu_time"],
            "iterations": bench["iterations"],
        }
    return {"context": report.get("context", {}), "benchmarks": benchmarks}


def smoke_check(baseline):
    benchmarks = baseline["benchmarks"]
    failures = []
    for compiled, reference in sorted(SMOKE_PAIRS.items()):
        if compiled not in benchmarks or reference not in benchmarks:
            continue  # filtered run; nothing to compare
        compiled_ns = benchmarks[compiled]["real_time_ns"]
        reference_ns = benchmarks[reference]["real_time_ns"]
        speedup = reference_ns / compiled_ns if compiled_ns else float("inf")
        status = "ok"
        if compiled_ns > reference_ns * TOLERANCE:
            status = "REGRESSION"
            failures.append(
                f"{compiled} ({compiled_ns:.0f} ns) is slower than "
                f"{reference} ({reference_ns:.0f} ns) beyond {TOLERANCE:.0%}"
            )
        print(f"  {compiled:38s} {speedup:6.2f}x vs {reference} [{status}]")

    for fast, reference, min_speedup, label in HEADLINES:
        if fast not in benchmarks or reference not in benchmarks:
            continue  # filtered run; nothing to compare
        speedup = (
            benchmarks[reference]["real_time_ns"]
            / benchmarks[fast]["real_time_ns"]
        )
        print(f"  headline {label} speedup: {speedup:.2f}x "
              f"(required >= {min_speedup}x)")
        if speedup < min_speedup:
            failures.append(
                f"{label} speedup {speedup:.2f}x is below the "
                f"{min_speedup}x floor"
            )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", default="build/bench/micro_perf")
    parser.add_argument("--out", default="BENCH_micro.json")
    parser.add_argument("--filter", default="", help="--benchmark_filter regex")
    parser.add_argument("--min-time", default="0.2", help="--benchmark_min_time seconds")
    parser.add_argument("--check-only", action="store_true",
                        help="re-check an existing baseline without running")
    args = parser.parse_args()

    if args.check_only:
        with open(args.out) as fh:
            baseline = json.load(fh)
    else:
        report = run_benchmarks(args.binary, args.filter, args.min_time)
        baseline = to_baseline(report)
        with open(args.out, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out} with {len(baseline['benchmarks'])} benchmarks")

    print("compiled-vs-reference smoke check:")
    failures = smoke_check(baseline)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("smoke check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
