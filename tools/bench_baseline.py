#!/usr/bin/env python3
"""Run the micro_perf benchmark suite and maintain BENCH_micro.json.

Usage:
    tools/bench_baseline.py [--binary build/bench/micro_perf]
                            [--out BENCH_micro.json]
                            [--filter REGEX] [--min-time SECONDS]
                            [--load-gen build/tools/load_gen]
                            [--skip-load-gen]
                            [--check-only]

The script runs micro_perf with --benchmark_format=json, extracts the
benchmarks into a stable baseline artifact (name -> real_time ns), and then
smoke-checks the compiled forwarding-plane paths against their reference
counterparts: a compiled path that is slower than its reference path (plus a
noise allowance) fails the run. Headline floors additionally require minimum
speedups — notably the DIR-24-8 compiled LPM must stay >= 2x faster than the
trie on route-table-sampled probes — and BM_CompilePlane rows are held under
absolute build-time ceilings so table painting never blows up the per-snapshot
compile step. It also drives tools/load_gen once (eight
concurrent technician sessions, >= 1000 tickets) and merges the service-level
report into the baseline as LG_* rows, asserting the audit chain stayed
intact. --check-only re-checks an existing BENCH_micro.json without running
anything.

Parallel-scaling floors (rows whose speedup only exists with real cores to
scale across) are annotated-skipped on single-CPU hosts; throughput floors
that come from architectural amortization, like the batched enforcement
service, are asserted everywhere.

Only the Python standard library is used.
"""

import argparse
import json
import os
import subprocess
import sys

# Compiled path -> reference path it must not be slower than. The tolerance
# absorbs CI noise; a compiled path slower than reference * TOLERANCE is a
# regression in the whole point of the compiled plane.
SMOKE_PAIRS = {
    "BM_AllPairsCompiled/net:0": "BM_AllPairsReference/net:0",
    "BM_AllPairsCompiled/net:1": "BM_AllPairsReference/net:1",
    "BM_CompiledFlowTrace/net:0": "BM_FlowTrace/net:0",
    "BM_CompiledFlowTrace/net:1": "BM_FlowTrace/net:1",
    "BM_QuarantineIncremental/net:0": "BM_QuarantineCopy/net:0",
    "BM_QuarantineIncremental/net:1": "BM_QuarantineCopy/net:1",
}
TOLERANCE = 1.10

# Headline acceptance targets: (fast path, reference path, minimum speedup,
# label). Falling below any floor fails the run. These hold on any host:
# the speedups come from doing less work, not from parallel hardware.
HEADLINES = [
    ("BM_CompiledFibLookup", "BM_FibLookup", 2.0,
     "compiled LPM vs trie (route-table-sampled probes)"),
    ("BM_AllPairsCompiled/net:1", "BM_AllPairsReference/net:1", 3.0,
     "all-pairs (university)"),
    ("BM_QuarantineIncremental/net:1", "BM_QuarantineCopy/net:1", 2.0,
     "quarantine enforcement (university)"),
    ("BM_ServeBatched/net:1/manual_time", "BM_ServeSerialized/net:1/manual_time", 2.0,
     "enforcement service, 8 sessions batched vs serialized (university)"),
    ("BM_FabricAllPairsSharded/k:8", "BM_FabricAllPairsDense/k:8", 2.0,
     "sharded vs dense all-pairs (k=8 fabric)"),
]

# Floors that measure thread-level scaling: the fast path only wins when
# there are cores to spread the work or contention across, so each entry
# carries the minimum host CPU count it needs; rows on smaller hosts are
# annotated-skipped (printing the host CPU count) instead of checked.
# Entries: (fast, reference, min_speedup, min_cpus, label).
PARALLEL_HEADLINES = [
    ("BM_AuditSinkRecord/iterations:20000/real_time/threads:8",
     "BM_AuditAppendContended/iterations:20000/real_time/threads:8", 2.0, 2,
     "sharded audit sink vs mutexed chain append (8 threads)"),
    ("BM_AllPairsSharded/threads:4/real_time",
     "BM_AllPairsSharded/threads:1/real_time", 1.5, 4,
     "sharded all-pairs, 4 threads vs 1 (k=6 fabric)"),
]

# Absolute ceilings (ns per operation) on what an observability
# instrumentation site may cost. Disabled sites must stay near their
# one-relaxed-load floor; an enabled journal append is one atomic stamp plus
# one striped-mutex ring write. Ceilings are generous (CI machines are slow
# and noisy) — they exist to catch order-of-magnitude instrumentation creep,
# not nanosecond drift.
OVERHEAD_CEILINGS_NS = {
    "BM_SpanDisabled": (200.0, "disabled span site"),
    "BM_JournalAppendDisabled": (200.0, "disabled journal append site"),
    "BM_JournalAppend": (2000.0, "enabled journal append"),
}

# Relative overhead ceilings: (slow path, reference path, max ratio, label).
# The quorum-replicated audit append pays for rollback/equivocation
# detection with a bounded number of extra hashes per entry (3 chain
# appends, 3 reseals, 2 seal verifications); if it drifts past the ceiling
# relative to the bare chain append, replication has stopped being O(1)
# per entry.
OVERHEAD_RATIO_CEILINGS = [
    ("BM_QuorumAppend", "BM_AuditAppend", 40.0,
     "quorum-replicated append vs bare chain append (3 replicas)"),
]

# Absolute build-time ceilings (ns): compiling a scenario's forwarding plane
# (FIB flattening into the DIR-24-8 tables + L2 precompute) must stay cheap
# enough to run per snapshot. The ceiling is ~20x the observed cost on a
# noisy single-CPU host — it exists to catch the compile step regressing to
# table-painting blowup, not scheduler jitter.
COMPILE_CEILINGS_NS = {
    "BM_CompilePlane/net:1": (5_000_000.0, "plane compile (university)"),
}

# Memory ceiling (bytes) on the compressed all-pairs store: the k=8 fabric
# (80 routers, 128 host devices standing in for 16k+ addresses) must fit its
# reachability result in O(classes^2 + hosts), far below the dense matrix's
# O(hosts^2 . path). The ceiling is loose against today's footprint but well
# under what the dense representation needs at the same scale, so losing the
# compression shows up as a red build.
MATRIX_BYTE_CEILINGS = {
    "BM_FabricAllPairsSharded/k:8": (8_000_000.0, "sharded matrix bytes (k=8 fabric)"),
}

# Floors over the merged load_gen report (LG_* rows): the service must have
# actually sustained the ISSUE's load shape, with the audit chain intact.
LOAD_GEN_SPEC = ["--network", "university", "--technicians", "8",
                 "--tickets", "1000", "--violating-every", "20"]


def run_benchmarks(binary, bench_filter, min_time):
    cmd = [binary, "--benchmark_format=json", f"--benchmark_min_time={min_time}"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed with exit code {proc.returncode}")
    return json.loads(proc.stdout)


def run_load_gen(binary):
    proc = subprocess.run([binary] + LOAD_GEN_SPEC, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"load_gen failed with exit code {proc.returncode}")
    return json.loads(proc.stdout)


def load_gen_rows(report):
    """Flattens the load_gen JSON report into LG_* baseline rows."""
    rows = {}
    for key, value in report.items():
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            rows[f"LG_{key}"] = value
    return rows


def num_cpus(baseline):
    context = baseline.get("context", {})
    cpus = context.get("num_cpus")
    if isinstance(cpus, int) and cpus > 0:
        return cpus
    return os.cpu_count() or 1


def check_pair(benchmarks, fast, reference, min_speedup, label):
    """Returns (speedup or None, failure message or None)."""
    if fast not in benchmarks or reference not in benchmarks:
        return None, None  # filtered run; nothing to compare
    fast_ns = benchmarks[fast]["real_time_ns"]
    reference_ns = benchmarks[reference]["real_time_ns"]
    speedup = reference_ns / fast_ns if fast_ns else float("inf")
    failure = None
    if speedup < min_speedup:
        failure = f"{label} speedup {speedup:.2f}x is below the {min_speedup}x floor"
    return speedup, failure


def smoke_check(baseline):
    benchmarks = baseline["benchmarks"]
    failures = []
    for compiled, reference in sorted(SMOKE_PAIRS.items()):
        if compiled not in benchmarks or reference not in benchmarks:
            continue  # filtered run; nothing to compare
        compiled_ns = benchmarks[compiled]["real_time_ns"]
        reference_ns = benchmarks[reference]["real_time_ns"]
        speedup = reference_ns / compiled_ns if compiled_ns else float("inf")
        status = "ok"
        if compiled_ns > reference_ns * TOLERANCE:
            status = "REGRESSION"
            failures.append(
                f"{compiled} ({compiled_ns:.0f} ns) is slower than "
                f"{reference} ({reference_ns:.0f} ns) beyond {TOLERANCE:.0%}"
            )
        print(f"  {compiled:38s} {speedup:6.2f}x vs {reference} [{status}]")

    for fast, reference, min_speedup, label in HEADLINES:
        speedup, failure = check_pair(benchmarks, fast, reference, min_speedup, label)
        if speedup is None:
            continue
        print(f"  headline {label} speedup: {speedup:.2f}x "
              f"(required >= {min_speedup}x)")
        if failure:
            failures.append(failure)

    cpus = num_cpus(baseline)
    for fast, reference, min_speedup, min_cpus, label in PARALLEL_HEADLINES:
        speedup, failure = check_pair(benchmarks, fast, reference, min_speedup, label)
        if speedup is None:
            continue
        if cpus < min_cpus:
            print(f"  parallel {label} speedup: {speedup:.2f}x "
                  f"[SKIPPED: host has {cpus} CPU(s), floor needs >= {min_cpus}]")
            continue
        print(f"  parallel {label} speedup: {speedup:.2f}x "
              f"(required >= {min_speedup}x on {cpus} CPUs)")
        if failure:
            failures.append(failure)
    return failures


def ceiling_check(benchmarks, ceilings):
    """Asserts absolute per-row ns ceilings (instrumentation / build cost)."""
    failures = []
    for name, (ceiling_ns, label) in sorted(ceilings.items()):
        row = benchmarks.get(name)
        if row is None:
            continue  # filtered run; nothing to check
        actual_ns = row["real_time_ns"]
        status = "ok" if actual_ns <= ceiling_ns else "REGRESSION"
        print(f"  {label}: {actual_ns:.1f} ns (ceiling {ceiling_ns:g} ns) [{status}]")
        if actual_ns > ceiling_ns:
            failures.append(
                f"{label} ({name}) costs {actual_ns:.1f} ns, over the "
                f"{ceiling_ns:g} ns ceiling")
    return failures


def ratio_ceiling_check(benchmarks):
    """Asserts slow-path / reference-path overhead ratios stay bounded."""
    failures = []
    for slow, reference, max_ratio, label in OVERHEAD_RATIO_CEILINGS:
        if slow not in benchmarks or reference not in benchmarks:
            continue  # filtered run; nothing to compare
        slow_ns = benchmarks[slow]["real_time_ns"]
        reference_ns = benchmarks[reference]["real_time_ns"]
        ratio = slow_ns / reference_ns if reference_ns else float("inf")
        status = "ok" if ratio <= max_ratio else "REGRESSION"
        print(f"  {label}: {ratio:.2f}x (ceiling {max_ratio:g}x) [{status}]")
        if ratio > max_ratio:
            failures.append(
                f"{label} costs {ratio:.2f}x the reference, over the "
                f"{max_ratio:g}x ceiling")
    return failures


def matrix_byte_check(benchmarks):
    """Asserts the compressed reachability store stayed under its ceiling."""
    failures = []
    for name, (ceiling, label) in sorted(MATRIX_BYTE_CEILINGS.items()):
        row = benchmarks.get(name)
        if row is None:
            continue  # filtered run; nothing to check
        actual = row.get("matrix_bytes")
        if actual is None:
            failures.append(f"{name} is missing its matrix_bytes counter")
            continue
        status = "ok" if actual <= ceiling else "REGRESSION"
        print(f"  {label}: {actual:,.0f} bytes (ceiling {ceiling:,.0f}) [{status}]")
        if actual > ceiling:
            failures.append(
                f"{label} ({name}) holds {actual:,.0f} bytes, over the "
                f"{ceiling:,.0f} byte ceiling")
    return failures


def load_check(baseline):
    """Asserts the service-level floors over the merged LG_* rows."""
    rows = baseline["benchmarks"]
    if "LG_audit_intact" not in rows:
        return []  # no load_gen rows merged (filtered or skipped run)
    failures = []

    def floor(name, minimum, label):
        value = rows.get(name)
        if value is None:
            failures.append(f"load_gen row {name} missing from baseline")
            return
        status = "ok" if value >= minimum else "FAIL"
        print(f"  {label}: {value:g} (required >= {minimum:g}) [{status}]")
        if value < minimum:
            failures.append(f"{label} {value:g} is below the {minimum:g} floor")

    floor("LG_audit_intact", 1, "load_gen audit chain intact")
    floor("LG_tickets", 1000, "load_gen tickets sustained")
    floor("LG_technicians", 8, "load_gen concurrent sessions")
    floor("LG_throughput_tps", 1, "load_gen throughput (tickets/s)")
    floor("LG_audit_replicas", 3, "load_gen audit ledger replicas")
    floor("LG_quorum_commits", 1, "load_gen quorum-committed appends")
    quorum_failures = rows.get("LG_quorum_failures", 0)
    status = "ok" if quorum_failures == 0 else "FAIL"
    print(f"  load_gen quorum failures: {quorum_failures:g} (required 0) [{status}]")
    if quorum_failures > 0:
        failures.append(
            f"load_gen saw {quorum_failures:g} audit appends miss quorum")
    if "LG_p99_ms" in rows:
        print(f"  load_gen latency: p50 {rows.get('LG_p50_ms', 0):.2f} ms, "
              f"p95 {rows.get('LG_p95_ms', 0):.2f} ms, "
              f"p99 {rows.get('LG_p99_ms', 0):.2f} ms")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", default="build/bench/micro_perf")
    parser.add_argument("--out", default="BENCH_micro.json")
    parser.add_argument("--filter", default="", help="--benchmark_filter regex")
    parser.add_argument("--min-time", default="0.2", help="--benchmark_min_time seconds")
    parser.add_argument("--load-gen", default="build/tools/load_gen",
                        help="load_gen binary for the LG_* service rows")
    parser.add_argument("--skip-load-gen", action="store_true",
                        help="do not run load_gen / merge LG_* rows")
    parser.add_argument("--check-only", action="store_true",
                        help="re-check an existing baseline without running")
    args = parser.parse_args()

    if args.check_only:
        with open(args.out) as fh:
            baseline = json.load(fh)
    else:
        report = run_benchmarks(args.binary, args.filter, args.min_time)
        baseline = to_baseline(report)
        if not args.skip_load_gen and not args.filter:
            load_report = run_load_gen(args.load_gen)
            baseline["benchmarks"].update(load_gen_rows(load_report))
        with open(args.out, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out} with {len(baseline['benchmarks'])} benchmarks")

    print("compiled-vs-reference smoke check:")
    failures = smoke_check(baseline)
    print("instrumentation overhead check:")
    failures += ceiling_check(baseline["benchmarks"], OVERHEAD_CEILINGS_NS)
    print("replication overhead check:")
    failures += ratio_ceiling_check(baseline["benchmarks"])
    print("plane compile-time check:")
    failures += ceiling_check(baseline["benchmarks"], COMPILE_CEILINGS_NS)
    print("sharded matrix memory check:")
    failures += matrix_byte_check(baseline["benchmarks"])
    print("service load check:")
    failures += load_check(baseline)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("smoke check passed")
    return 0


# User counters worth freezing into the baseline alongside timings: the LPM
# table shape (stride / bytes / overflow chunks) explains the lookup and
# compile rows next to them, and the sharded reachability shape
# (matrix_bytes / equiv_classes / hosts) feeds the memory-ceiling check.
COUNTER_KEYS = ("stride", "table_bytes", "fib_bytes", "fib_overflow_chunks",
                "matrix_bytes", "equiv_classes", "hosts")


def to_baseline(report):
    benchmarks = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        row = {
            "real_time_ns": bench["real_time"],
            "cpu_time_ns": bench["cpu_time"],
            "iterations": bench["iterations"],
        }
        for key in COUNTER_KEYS:
            if isinstance(bench.get(key), (int, float)):
                row[key] = bench[key]
        benchmarks[bench["name"]] = row
    return {"context": report.get("context", {}), "benchmarks": benchmarks}


if __name__ == "__main__":
    sys.exit(main())
