// obs_report: joins the three observability exports of one service run —
// the structured event journal (--journal-out), the Chrome trace
// (--trace-out) and the replicated audit ledger (--audit-out) — into
// per-ticket end-to-end timelines, and cross-checks them against each other:
//
//   * every journal ticket must have a complete lifecycle (open -> submit ->
//     queue enqueue/dequeue -> verify verdict -> close);
//   * every audit record naming a ticket or session must join a known
//     timeline (otherwise it is an orphan — evidence without provenance);
//   * every verified ticket must appear in the audit chain (otherwise the
//     timeline is unaudited — work without evidence);
//   * trace spans carrying a ticket arg must join a known timeline;
//   * every replica's audit hash chain must re-verify offline, and the
//     replicas must agree entry-for-entry (divergence = equivocation).
//
// Exit status is 0 only when every cross-check passes, which is what the CI
// load_gen smoke step asserts.
//
//   obs_report --journal run.journal.json [--trace run.trace.json]
//              [--audit run.audit.json] [--out report.json]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "enforcer/audit.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using heimdall::util::Json;

void usage() {
  std::cerr << "usage: obs_report --journal FILE [--trace FILE] [--audit FILE]\n"
               "                  [--out FILE]\n";
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw heimdall::util::Error("cannot open '" + path + "'");
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

std::uint64_t u64(const Json& object, const char* key) {
  const Json* field = object.find(key);
  return field && field->is_number() ? static_cast<std::uint64_t>(field->as_number()) : 0;
}

/// One journal event, as exported by EventJournal::to_json().
struct Event {
  std::uint64_t seq = 0;
  std::uint64_t t_us = 0;
  std::string type;
  std::int64_t ticket = 0;
  std::uint64_t session = 0;
  std::string actor;
  std::string detail;
  std::uint64_t value_us = 0;
};

/// Everything one ticket did, joined across the three exports.
struct Timeline {
  std::vector<Event> events;
  std::set<std::uint64_t> sessions;
  std::string actor;
  std::uint64_t first_us = 0;
  std::uint64_t last_us = 0;
  std::uint64_t queue_wait_us = 0;  ///< QueueDequeue value
  std::uint64_t verify_us = 0;      ///< VerifyVerdict value
  std::size_t quarantines = 0;
  std::size_t audit_records = 0;
  std::size_t spans = 0;
  bool has_open = false, has_submit = false, has_enqueue = false;
  bool has_dequeue = false, has_verdict = false, has_close = false;

  bool complete() const {
    return has_open && has_submit && has_enqueue && has_dequeue && has_verdict && has_close;
  }
  std::string missing() const {
    std::string out;
    auto need = [&](bool have, const char* stage) {
      if (have) return;
      if (!out.empty()) out += ", ";
      out += stage;
    };
    need(has_open, "session_open");
    need(has_submit, "session_submit");
    need(has_enqueue, "queue_enqueue");
    need(has_dequeue, "queue_dequeue");
    need(has_verdict, "verify_verdict");
    need(has_close, "session_close");
    return out;
  }
};

struct Report {
  std::map<std::int64_t, Timeline> timelines;
  std::map<std::uint64_t, std::int64_t> session_to_ticket;
  std::uint64_t journal_events = 0;
  std::uint64_t journal_dropped = 0;
  std::size_t service_events = 0;  ///< journal events with no ticket/session
  std::size_t audit_entries = 0;
  std::size_t audit_replicas = 0;
  std::size_t service_audit_records = 0;
  std::size_t trace_spans = 0;
  bool audit_chain_checked = false;
  bool audit_chain_intact = false;
  std::vector<std::string> problems;  ///< orphans / incomplete / tamper
};

void ingest_journal(Report& report, const Json& document) {
  report.journal_events = u64(document, "appended");
  report.journal_dropped = u64(document, "dropped");
  std::vector<Event> events;
  for (const Json& item : document.at("events").as_array()) {
    Event event;
    event.seq = u64(item, "seq");
    event.t_us = u64(item, "t_us");
    event.type = item.at("type").as_string();
    event.ticket = static_cast<std::int64_t>(item.at("ticket").as_number());
    event.session = u64(item, "session");
    event.actor = item.at("actor").as_string();
    event.detail = item.at("detail").as_string();
    event.value_us = u64(item, "value_us");
    events.push_back(std::move(event));
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });

  // First pass: session -> ticket, learned from any event carrying both.
  for (const Event& event : events) {
    if (event.ticket != 0 && event.session != 0)
      report.session_to_ticket.emplace(event.session, event.ticket);
  }
  for (Event& event : events) {
    std::int64_t ticket = event.ticket;
    if (ticket == 0 && event.session != 0) {
      auto found = report.session_to_ticket.find(event.session);
      if (found != report.session_to_ticket.end()) ticket = found->second;
    }
    if (ticket == 0) {
      ++report.service_events;  // audit flush/seal, tamper alerts, dumps
      continue;
    }
    Timeline& timeline = report.timelines[ticket];
    if (timeline.events.empty()) timeline.first_us = event.t_us;
    timeline.last_us = std::max(timeline.last_us, event.t_us);
    if (event.session != 0) timeline.sessions.insert(event.session);
    if (timeline.actor.empty() && !event.actor.empty() && event.actor != "enforcer" &&
        event.actor != "service")
      timeline.actor = event.actor;
    if (event.type == "session_open") timeline.has_open = true;
    if (event.type == "session_submit") timeline.has_submit = true;
    if (event.type == "queue_enqueue") timeline.has_enqueue = true;
    if (event.type == "queue_dequeue") {
      timeline.has_dequeue = true;
      timeline.queue_wait_us += event.value_us;
    }
    if (event.type == "verify_verdict") {
      timeline.has_verdict = true;
      timeline.verify_us += event.value_us;
    }
    if (event.type == "session_close") timeline.has_close = true;
    if (event.type == "quarantine" || event.type == "replay_failure") ++timeline.quarantines;
    timeline.events.push_back(std::move(event));
  }
}

void ingest_audit(Report& report, const Json& document) {
  // Offline forensics first: rebuild the chains and re-verify every one.
  // A replicated-ledger export carries a "replicas" array of chains; a
  // legacy export is one bare log. Replica 0 (the leader) drives the
  // ticket joining either way.
  std::vector<heimdall::enforce::AuditLog> replicas;
  if (const Json* array = document.find("replicas")) {
    for (const Json& item : array->as_array())
      replicas.push_back(heimdall::enforce::AuditLog::from_json(item));
  }
  if (replicas.empty()) replicas.push_back(heimdall::enforce::AuditLog::from_json(document));

  const heimdall::enforce::AuditLog& log = replicas.front();
  report.audit_entries = log.size();
  report.audit_replicas = replicas.size();
  report.audit_chain_checked = true;
  report.audit_chain_intact = true;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i].verify_chain()) continue;
    report.audit_chain_intact = false;
    report.problems.push_back("audit replica " + std::to_string(i) +
                              " chain does NOT re-verify (first corrupt index " +
                              std::to_string(replicas[i].first_corrupt_index()) + ")");
  }
  // Cross-replica comparison: a replica whose chain verifies but disagrees
  // with the leader entry-for-entry sealed a different history.
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    const auto& follower = replicas[i].entries();
    const auto& leader = log.entries();
    std::size_t common = std::min(leader.size(), follower.size());
    for (std::size_t seq = 0; seq < common; ++seq) {
      if (follower[seq].hash == leader[seq].hash) continue;
      report.audit_chain_intact = false;
      report.problems.push_back("audit replica " + std::to_string(i) +
                                " equivocates: diverges from the leader at sequence " +
                                std::to_string(seq));
      break;
    }
    if (follower.size() != leader.size()) {
      report.audit_chain_intact = false;
      report.problems.push_back("audit replica " + std::to_string(i) + " holds " +
                                std::to_string(follower.size()) + " entries, leader holds " +
                                std::to_string(leader.size()));
    }
  }

  static const std::regex ticket_re("ticket #(-?[0-9]+)");
  static const std::regex session_re("session #([0-9]+)");
  for (const heimdall::enforce::AuditEntry& entry : log.entries()) {
    std::smatch match;
    std::int64_t ticket = 0;
    if (std::regex_search(entry.message, match, ticket_re)) {
      ticket = std::stoll(match[1].str());
    } else if (std::regex_search(entry.message, match, session_re)) {
      std::uint64_t session = std::stoull(match[1].str());
      auto found = report.session_to_ticket.find(session);
      if (found == report.session_to_ticket.end()) {
        report.problems.push_back("orphan audit record (seq " + std::to_string(entry.sequence) +
                                  "): unknown session #" + std::to_string(session) + ": " +
                                  entry.message);
        continue;
      }
      ticket = found->second;
    } else {
      ++report.service_audit_records;  // seals, service lifecycle, etc.
      continue;
    }
    auto timeline = report.timelines.find(ticket);
    if (timeline == report.timelines.end()) {
      report.problems.push_back("orphan audit record (seq " + std::to_string(entry.sequence) +
                                "): no journal timeline for ticket #" + std::to_string(ticket) +
                                ": " + entry.message);
      continue;
    }
    ++timeline->second.audit_records;
  }
}

void ingest_trace(Report& report, const Json& document) {
  for (const Json& item : document.at("traceEvents").as_array()) {
    ++report.trace_spans;
    const Json* args = item.find("args");
    const Json* ticket_arg = args ? args->find("ticket") : nullptr;
    if (!ticket_arg || !ticket_arg->is_string()) continue;
    std::int64_t ticket = 0;
    try {
      ticket = std::stoll(ticket_arg->as_string());
    } catch (...) {
      continue;
    }
    if (ticket == 0) continue;
    auto timeline = report.timelines.find(ticket);
    if (timeline == report.timelines.end()) {
      report.problems.push_back("orphan trace span '" + item.at("name").as_string() +
                                "': no journal timeline for ticket #" + std::to_string(ticket));
      continue;
    }
    ++timeline->second.spans;
  }
}

void cross_check(Report& report, bool have_audit) {
  for (const auto& [ticket, timeline] : report.timelines) {
    if (!timeline.complete())
      report.problems.push_back("incomplete timeline for ticket #" + std::to_string(ticket) +
                                ": missing " + timeline.missing());
    if (have_audit && timeline.audit_records == 0)
      report.problems.push_back("unaudited ticket #" + std::to_string(ticket) +
                                ": journal timeline has no matching audit record");
  }
  if (report.journal_dropped != 0)
    report.problems.push_back("journal dropped " + std::to_string(report.journal_dropped) +
                              " events (raise the capacity for a complete join)");
}

Json report_json(const Report& report) {
  Json tickets{heimdall::util::JsonArray{}};
  for (const auto& [ticket, timeline] : report.timelines) {
    Json row;
    row.set("ticket", Json(ticket));
    Json sessions{heimdall::util::JsonArray{}};
    for (std::uint64_t session : timeline.sessions) sessions.push_back(Json(session));
    row.set("sessions", std::move(sessions));
    row.set("actor", Json(timeline.actor));
    row.set("events", Json(timeline.events.size()));
    row.set("first_us", Json(timeline.first_us));
    row.set("last_us", Json(timeline.last_us));
    row.set("wall_us", Json(timeline.last_us - timeline.first_us));
    row.set("queue_wait_us", Json(timeline.queue_wait_us));
    row.set("verify_us", Json(timeline.verify_us));
    row.set("quarantines", Json(timeline.quarantines));
    row.set("audit_records", Json(timeline.audit_records));
    row.set("trace_spans", Json(timeline.spans));
    row.set("complete", Json(timeline.complete()));
    if (!timeline.complete()) row.set("missing", Json(timeline.missing()));
    Json stages{heimdall::util::JsonArray{}};
    for (const Event& event : timeline.events) {
      Json stage;
      stage.set("t_us", Json(event.t_us));
      stage.set("type", Json(event.type));
      stage.set("actor", Json(event.actor));
      stage.set("detail", Json(event.detail));
      if (event.value_us != 0) stage.set("value_us", Json(event.value_us));
      stages.push_back(std::move(stage));
    }
    row.set("timeline", std::move(stages));
    tickets.push_back(std::move(row));
  }

  Json problems{heimdall::util::JsonArray{}};
  for (const std::string& problem : report.problems) problems.push_back(Json(problem));

  Json out;
  out.set("tickets", std::move(tickets));
  out.set("ticket_count", Json(report.timelines.size()));
  out.set("journal_events", Json(report.journal_events));
  out.set("journal_dropped", Json(report.journal_dropped));
  out.set("service_events", Json(report.service_events));
  out.set("audit_entries", Json(report.audit_entries));
  out.set("audit_replicas", Json(report.audit_replicas));
  out.set("service_audit_records", Json(report.service_audit_records));
  out.set("trace_spans", Json(report.trace_spans));
  if (report.audit_chain_checked) out.set("audit_chain_intact", Json(report.audit_chain_intact));
  out.set("problems", std::move(problems));
  out.set("ok", Json(report.problems.empty()));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path, trace_path, audit_path, out_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--journal") {
      journal_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--audit") {
      audit_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }
  if (journal_path.empty()) {
    usage();
    return 2;
  }

  Report report;
  try {
    ingest_journal(report, Json::parse(read_file(journal_path)));
    if (!audit_path.empty()) ingest_audit(report, Json::parse(read_file(audit_path)));
    if (!trace_path.empty()) ingest_trace(report, Json::parse(read_file(trace_path)));
  } catch (const std::exception& error) {
    std::cerr << "obs_report: " << error.what() << "\n";
    return 2;
  }
  cross_check(report, !audit_path.empty());

  std::string json = report_json(report).dump(2);
  std::cout << json << "\n";
  if (!out_path.empty()) {
    std::ofstream file(out_path);
    file << json << "\n";
  }

  for (const std::string& problem : report.problems)
    std::cerr << "PROBLEM: " << problem << "\n";
  std::cerr << "obs_report: " << report.timelines.size() << " ticket timelines, "
            << report.problems.size() << " problems\n";
  return report.problems.empty() ? 0 : 1;
}
