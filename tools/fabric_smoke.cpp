// fabric_smoke: the fabric-scale CI gate. Generates a k-ary fat-tree,
// computes the sharded all-pairs reachability (multi-threaded when the host
// has cores), then drives one real enforcement ticket — the injected edge
// ACL issue, fixed through a SessionManager session running the prepared
// script — and asserts the things CI cares about:
//
//   * the clean fabric is fully reachable and the compressed matrix stays
//     under --max-matrix-bytes;
//   * the fix applies through the service, the ticket pair is healthy
//     afterwards, and the audit chain verifies end to end;
//   * the heimdall.fabric_probe gauges are published.
//
// Exit status is 0 only when every check passes. --out writes the global
// metrics registry as JSON (the CI artifact).
//
//   fabric_smoke [--k N] [--max-matrix-bytes BYTES] [--out FILE]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataplane/compiled.hpp"
#include "dataplane/dataplane.hpp"
#include "dataplane/sharded.hpp"
#include "obs/telemetry.hpp"
#include "scenarios/fabric.hpp"
#include "service/manager.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace heimdall;

struct Args {
  unsigned k = 6;
  std::size_t max_matrix_bytes = 8'000'000;
  std::string out;
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (std::strcmp(flag, "--k") == 0) {
      const char* v = value();
      if (!v) return false;
      args.k = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(flag, "--max-matrix-bytes") == 0) {
      const char* v = value();
      if (!v) return false;
      args.max_matrix_bytes = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(flag, "--out") == 0) {
      const char* v = value();
      if (!v) return false;
      args.out = v;
    } else {
      return false;
    }
  }
  return args.k >= 4 && args.k % 2 == 0;
}

int failures = 0;

void check(bool ok, const std::string& label) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", label.c_str());
  if (!ok) ++failures;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: fabric_smoke [--k N] [--max-matrix-bytes BYTES] [--out FILE]\n");
    return 2;
  }

  scen::FabricOptions options;
  options.k = args.k;
  const scen::FabricInfo info = scen::fabric_info(options);
  std::printf("fabric k=%u: %zu routers, %zu hosts, %zu links, %zu host addresses\n", args.k,
              info.routers, info.hosts, info.links, info.host_addresses);

  net::Network production = scen::build_fabric(options);
  scen::fabric_probe(production);

  // ---- sharded all-pairs on the clean fabric -----------------------------
  {
    dp::Dataplane dataplane = dp::Dataplane::compute(production);
    dp::CompiledPlane plane = dp::CompiledPlane::compile(production, dataplane);
    const unsigned cores = std::thread::hardware_concurrency();
    std::unique_ptr<util::ThreadPool> pool;
    dp::ShardOptions shard_options;
    if (cores > 1) {
      pool = std::make_unique<util::ThreadPool>(cores);
      shard_options.pool = pool.get();
    }
    dp::ShardedReachability matrix = dp::ShardedReachability::compute(plane, shard_options);
    std::printf("sharded all-pairs: %zu hosts in %zu classes, %zu traced pairs, %zu bytes\n",
                matrix.hosts().size(), matrix.class_count(), matrix.traced_pairs(),
                matrix.bytes());
    check(matrix.hosts().size() == info.hosts, "all fabric hosts enumerated");
    check(matrix.reachable_count() == matrix.total_count(), "clean fabric fully reachable");
    check(matrix.class_count() < matrix.hosts().size(),
          "equivalence classes compress the host set");
    check(matrix.bytes() <= args.max_matrix_bytes,
          "matrix bytes " + std::to_string(matrix.bytes()) + " under ceiling " +
              std::to_string(args.max_matrix_bytes));
  }

  // ---- one enforcement ticket through the service ------------------------
  {
    const scen::IssueSpec issue = scen::fabric_issues(options).front();  // edge ACL
    issue.inject(production);
    check(!issue.resolved(production), "injected issue breaks the ticket pair");

    service::ServiceOptions service_options;
    service_options.engine_options.matrix_mode = analysis::MatrixMode::Sharded;
    service::SessionManager manager(production, scen::fabric_policies(options),
                                    service_options);
    auto session = manager.open(issue.ticket, "fabric-smoke");
    for (const std::string& command : issue.fix_script) session->run(command);
    auto outcome = session->submit();
    manager.drain();
    check(outcome.get().report.applied_any, "fix changeset applied to production");
    check(issue.resolved(manager.production_copy()), "ticket pair healthy after the fix");
    session->close();
    manager.shutdown();
    check(manager.enforcer().audit_intact(), "audit chain intact");
  }

  // ---- gauges + artifact --------------------------------------------------
  obs::Registry& registry = obs::Registry::global();
  check(registry.gauge("scenario.routers").value() ==
            static_cast<std::int64_t>(info.routers),
        "scenario.routers gauge published");
  check(registry.gauge("scenario.hosts").value() == static_cast<std::int64_t>(info.hosts),
        "scenario.hosts gauge published");
  check(registry.gauge("matrix.bytes").value() > 0, "matrix.bytes gauge published");
  check(registry.gauge("matrix.equiv_classes").value() > 0,
        "matrix.equiv_classes gauge published");

  if (!args.out.empty()) {
    if (obs::write_metrics_file(registry, args.out))
      std::printf("metrics written to %s\n", args.out.c_str());
    else
      check(false, "metrics artifact written");
  }

  std::printf(failures == 0 ? "fabric smoke passed\n" : "fabric smoke FAILED (%d)\n", failures);
  return failures == 0 ? 0 : 1;
}
