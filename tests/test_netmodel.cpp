// Unit tests for the network object model: ACL evaluation, devices,
// topology queries, and Network container invariants.
#include <gtest/gtest.h>

#include "netmodel/network.hpp"
#include "util/error.hpp"

namespace heimdall::net {
namespace {

Flow icmp(const char* src, const char* dst) {
  Flow flow;
  flow.src_ip = Ipv4Address::parse(src);
  flow.dst_ip = Ipv4Address::parse(dst);
  flow.protocol = IpProtocol::Icmp;
  return flow;
}

Flow tcp(const char* src, std::uint16_t sport, const char* dst, std::uint16_t dport) {
  Flow flow;
  flow.src_ip = Ipv4Address::parse(src);
  flow.dst_ip = Ipv4Address::parse(dst);
  flow.protocol = IpProtocol::Tcp;
  flow.src_port = sport;
  flow.dst_port = dport;
  return flow;
}

// -------------------------------------------------------------------- ACL --

TEST(Acl, FirstMatchWins) {
  Acl acl;
  acl.name = "TEST";
  AclEntry permit;
  permit.action = AclEntry::Action::Permit;
  permit.src = Ipv4Prefix::parse("10.0.1.0/24");
  acl.entries.push_back(permit);
  AclEntry deny;
  deny.action = AclEntry::Action::Deny;
  acl.entries.push_back(deny);

  EXPECT_TRUE(acl_permits(acl, icmp("10.0.1.5", "10.0.2.1")));
  EXPECT_FALSE(acl_permits(acl, icmp("10.0.3.5", "10.0.2.1")));
}

TEST(Acl, ImplicitDenyOnEmptyOrNoMatch) {
  Acl acl;
  acl.name = "EMPTY";
  EXPECT_FALSE(acl_permits(acl, icmp("1.2.3.4", "5.6.7.8")));

  AclEntry narrow;
  narrow.action = AclEntry::Action::Permit;
  narrow.dst = Ipv4Prefix::parse("10.9.9.0/24");
  acl.entries.push_back(narrow);
  EXPECT_FALSE(acl_permits(acl, icmp("1.2.3.4", "5.6.7.8")));
}

TEST(Acl, ProtocolSelector) {
  AclEntry entry;
  entry.action = AclEntry::Action::Permit;
  entry.protocol = IpProtocol::Tcp;
  EXPECT_TRUE(entry_matches(entry, tcp("1.1.1.1", 1024, "2.2.2.2", 80)));
  EXPECT_FALSE(entry_matches(entry, icmp("1.1.1.1", "2.2.2.2")));

  entry.protocol = IpProtocol::Any;
  EXPECT_TRUE(entry_matches(entry, tcp("1.1.1.1", 1024, "2.2.2.2", 80)));
  EXPECT_TRUE(entry_matches(entry, icmp("1.1.1.1", "2.2.2.2")));
}

TEST(Acl, PortRanges) {
  AclEntry entry;
  entry.action = AclEntry::Action::Permit;
  entry.protocol = IpProtocol::Tcp;
  entry.dst_ports = PortRange{80, 443};
  EXPECT_TRUE(entry_matches(entry, tcp("1.1.1.1", 5000, "2.2.2.2", 80)));
  EXPECT_TRUE(entry_matches(entry, tcp("1.1.1.1", 5000, "2.2.2.2", 443)));
  EXPECT_FALSE(entry_matches(entry, tcp("1.1.1.1", 5000, "2.2.2.2", 8080)));
  // Port-constrained entries never match portless protocols.
  EXPECT_FALSE(entry_matches(entry, icmp("1.1.1.1", "2.2.2.2")));
}

TEST(Acl, RendersCiscoSyntax) {
  AclEntry entry;
  entry.action = AclEntry::Action::Permit;
  entry.protocol = IpProtocol::Tcp;
  entry.src = Ipv4Prefix::parse("10.0.1.0/24");
  entry.dst = Ipv4Prefix::parse("10.0.2.5/32");
  entry.dst_ports = PortRange::exactly(80);
  EXPECT_EQ(entry.to_string(), "permit tcp 10.0.1.0 0.0.0.255 host 10.0.2.5 eq 80");

  AclEntry deny_any;
  deny_any.action = AclEntry::Action::Deny;
  EXPECT_EQ(deny_any.to_string(), "deny ip any any");
}

// ----------------------------------------------------------------- Device --

TEST(Device, InterfaceManagement) {
  Device device(DeviceId("r1"), DeviceKind::Router);
  Interface iface;
  iface.id = InterfaceId("Gi0/0");
  device.add_interface(iface);
  EXPECT_NE(device.find_interface(InterfaceId("Gi0/0")), nullptr);
  EXPECT_EQ(device.find_interface(InterfaceId("Gi0/1")), nullptr);
  EXPECT_THROW(device.interface(InterfaceId("Gi0/1")), util::NotFoundError);
  EXPECT_THROW(device.add_interface(iface), util::InvariantError);  // duplicate
}

TEST(Device, InterfaceWithAddressMatchesExactIp) {
  Device device(DeviceId("r1"), DeviceKind::Router);
  Interface iface;
  iface.id = InterfaceId("Gi0/0");
  iface.address = InterfaceAddress{Ipv4Address::parse("10.0.1.1"), 24};
  device.add_interface(iface);
  EXPECT_NE(device.interface_with_address(Ipv4Address::parse("10.0.1.1")), nullptr);
  // Same subnet, different host: no match.
  EXPECT_EQ(device.interface_with_address(Ipv4Address::parse("10.0.1.2")), nullptr);
}

TEST(Device, AclManagement) {
  Device device(DeviceId("r1"), DeviceKind::Router);
  Acl acl;
  acl.name = "WEB";
  device.add_acl(acl);
  EXPECT_NE(device.find_acl("WEB"), nullptr);
  EXPECT_THROW(device.add_acl(acl), util::InvariantError);
  device.remove_acl("WEB");
  EXPECT_EQ(device.find_acl("WEB"), nullptr);
}

TEST(Device, KindParsing) {
  EXPECT_EQ(parse_device_kind("router"), DeviceKind::Router);
  EXPECT_EQ(parse_device_kind("Switch"), DeviceKind::Switch);
  EXPECT_EQ(parse_device_kind("HOST"), DeviceKind::Host);
  EXPECT_THROW(parse_device_kind("toaster"), util::ParseError);
}

// --------------------------------------------------------------- Topology --

Endpoint ep(const char* device, const char* iface) {
  return Endpoint{DeviceId(device), InterfaceId(iface)};
}

TEST(Topology, LinkQueries) {
  Topology topology;
  topology.add_link({ep("a", "1"), ep("b", "1")});
  topology.add_link({ep("b", "2"), ep("c", "1")});

  EXPECT_EQ(topology.peer_of(ep("a", "1")), ep("b", "1"));
  EXPECT_EQ(topology.peer_of(ep("c", "1")), ep("b", "2"));
  EXPECT_FALSE(topology.peer_of(ep("a", "9")).has_value());
  EXPECT_EQ(topology.neighbors(DeviceId("b")),
            (std::vector<DeviceId>{DeviceId("a"), DeviceId("c")}));
}

TEST(Topology, RejectsDoubleWiringAndSelfLinks) {
  Topology topology;
  topology.add_link({ep("a", "1"), ep("b", "1")});
  EXPECT_THROW(topology.add_link({ep("a", "1"), ep("c", "1")}), util::InvariantError);
  EXPECT_THROW(topology.add_link({ep("d", "1"), ep("d", "1")}), util::InvariantError);
}

TEST(Topology, ShortestPath) {
  // a - b - c - e, a - d - e: two equal 3-hop device paths a..e? No:
  // a-b-c-e is 4 devices, a-d-e is 3 devices. Shortest is via d.
  Topology topology;
  topology.add_link({ep("a", "1"), ep("b", "1")});
  topology.add_link({ep("b", "2"), ep("c", "1")});
  topology.add_link({ep("c", "2"), ep("e", "1")});
  topology.add_link({ep("a", "2"), ep("d", "1")});
  topology.add_link({ep("d", "2"), ep("e", "2")});

  auto path = topology.shortest_path(DeviceId("a"), DeviceId("e"));
  EXPECT_EQ(path, (std::vector<DeviceId>{DeviceId("a"), DeviceId("d"), DeviceId("e")}));
  EXPECT_EQ(topology.shortest_path(DeviceId("a"), DeviceId("a")),
            (std::vector<DeviceId>{DeviceId("a")}));
  EXPECT_TRUE(topology.shortest_path(DeviceId("a"), DeviceId("zzz")).empty());
}

TEST(Topology, DevicesOnShortestPathsUnionsEcmp) {
  // Diamond: a-b-d and a-c-d are both shortest; the union holds all four.
  Topology topology;
  topology.add_link({ep("a", "1"), ep("b", "1")});
  topology.add_link({ep("a", "2"), ep("c", "1")});
  topology.add_link({ep("b", "2"), ep("d", "1")});
  topology.add_link({ep("c", "2"), ep("d", "2")});
  // A longer detour that must NOT be included.
  topology.add_link({ep("a", "3"), ep("x", "1")});
  topology.add_link({ep("x", "2"), ep("y", "1")});
  topology.add_link({ep("y", "2"), ep("d", "3")});

  auto devices = topology.devices_on_shortest_paths(DeviceId("a"), DeviceId("d"));
  EXPECT_EQ(devices, (std::set<DeviceId>{DeviceId("a"), DeviceId("b"), DeviceId("c"),
                                         DeviceId("d")}));
  EXPECT_TRUE(topology.devices_on_shortest_paths(DeviceId("a"), DeviceId("missing")).empty());
}

// ---------------------------------------------------------------- Network --

TEST(Network, DeviceLifecycle) {
  Network network("test");
  network.add_device(Device(DeviceId("r1"), DeviceKind::Router));
  EXPECT_TRUE(network.has_device(DeviceId("r1")));
  EXPECT_THROW(network.add_device(Device(DeviceId("r1"), DeviceKind::Router)),
               util::InvariantError);
  EXPECT_THROW(network.device(DeviceId("nope")), util::NotFoundError);

  network.remove_device(DeviceId("r1"));
  EXPECT_FALSE(network.has_device(DeviceId("r1")));
}

TEST(Network, RemoveDevicePrunesLinks) {
  Network network("test");
  for (const char* name : {"a", "b", "c"}) {
    Device device(DeviceId(name), DeviceKind::Router);
    Interface iface;
    iface.id = InterfaceId("e0");
    device.add_interface(iface);
    Interface iface2;
    iface2.id = InterfaceId("e1");
    device.add_interface(iface2);
    network.add_device(std::move(device));
  }
  network.connect(ep("a", "e0"), ep("b", "e0"));
  network.connect(ep("b", "e1"), ep("c", "e0"));
  network.remove_device(DeviceId("b"));
  EXPECT_TRUE(network.topology().links().empty());
}

TEST(Network, ConnectValidatesEndpoints) {
  Network network("test");
  network.add_device(Device(DeviceId("a"), DeviceKind::Router));
  network.add_device(Device(DeviceId("b"), DeviceKind::Router));
  EXPECT_THROW(network.connect(ep("a", "missing"), ep("b", "missing")), util::NotFoundError);
}

TEST(Network, EndpointOfIpAndPrimaryIp) {
  Network network("test");
  Device device(DeviceId("r1"), DeviceKind::Router);
  Interface iface;
  iface.id = InterfaceId("Gi0/0");
  iface.address = InterfaceAddress{Ipv4Address::parse("10.0.1.1"), 24};
  device.add_interface(iface);
  network.add_device(std::move(device));

  EXPECT_EQ(network.endpoint_of_ip(Ipv4Address::parse("10.0.1.1")), ep("r1", "Gi0/0"));
  EXPECT_FALSE(network.endpoint_of_ip(Ipv4Address::parse("10.0.9.9")).has_value());
  EXPECT_EQ(network.primary_ip(DeviceId("r1")), Ipv4Address::parse("10.0.1.1"));
  EXPECT_FALSE(network.primary_ip(DeviceId("ghost")).has_value());
}

TEST(Network, ValidateCatchesDanglingAclReference) {
  Network network("test");
  Device device(DeviceId("r1"), DeviceKind::Router);
  Interface iface;
  iface.id = InterfaceId("Gi0/0");
  iface.acl_in = "GHOST";
  device.add_interface(iface);
  network.add_device(std::move(device));
  EXPECT_THROW(network.validate(), util::InvariantError);
}

TEST(Network, ValidateCatchesUndeclaredVlan) {
  Network network("test");
  Device device(DeviceId("sw1"), DeviceKind::Switch);
  Interface iface;
  iface.id = InterfaceId("Fa0/1");
  iface.mode = SwitchportMode::Access;
  iface.access_vlan = 77;
  device.add_interface(iface);
  network.add_device(std::move(device));
  EXPECT_THROW(network.validate(), util::InvariantError);
}

TEST(Network, ValueSemanticsCloneIsIndependent) {
  Network original("prod");
  Device device(DeviceId("r1"), DeviceKind::Router);
  Interface iface;
  iface.id = InterfaceId("Gi0/0");
  device.add_interface(iface);
  original.add_device(std::move(device));

  Network clone = original;
  clone.device(DeviceId("r1")).interface(InterfaceId("Gi0/0")).shutdown = true;
  EXPECT_FALSE(original.device(DeviceId("r1")).interface(InterfaceId("Gi0/0")).shutdown);
  EXPECT_NE(original, clone);
}

}  // namespace
}  // namespace heimdall::net
