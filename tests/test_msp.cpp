// Unit + integration tests for the MSP substrate: the RMM baseline, the
// latency model, both workflows, attack-surface metrics, attacker scripts.
#include <gtest/gtest.h>

#include "msp/attacker.hpp"
#include "msp/metrics.hpp"
#include "msp/rmm.hpp"
#include "msp/workflow.hpp"
#include "scenarios/enterprise.hpp"
#include "util/error.hpp"

namespace heimdall::msp {
namespace {

using namespace heimdall::net;
using priv::Action;

// --------------------------------------------------------------------- RMM --

TEST(Rmm, AgentsDeployedEverywhereWithRoot) {
  Network production = scen::build_enterprise();
  RmmServer server(production);
  EXPECT_EQ(server.agents().size(), production.devices().size());
  for (const RmmAgent& agent : server.agents()) EXPECT_TRUE(agent.root);
}

TEST(Rmm, AuthenticationRules) {
  Network production = scen::build_enterprise();
  RmmServer server(production);
  server.register_user({"alice", "pw1", false});
  server.register_user({"bob", "pw2", true});

  EXPECT_TRUE(server.authenticate({"alice", "pw1", false}));
  EXPECT_FALSE(server.authenticate({"alice", "wrong", false}));
  EXPECT_FALSE(server.authenticate({"bob", "pw2", false}));  // MFA required
  EXPECT_TRUE(server.authenticate({"bob", "pw2", true}));
  EXPECT_FALSE(server.authenticate({"mallory", "pw1", true}));
  EXPECT_THROW(server.open_session({"mallory", "x", false}), util::InvariantError);
}

TEST(Rmm, SessionHasUnmediatedRoot) {
  Network production = scen::build_enterprise();
  RmmServer server(production);
  server.register_user({"tech", "pw", false});
  RmmSession session = server.open_session({"tech", "pw", false});

  // The baseline gladly executes what Heimdall would deny: reading any
  // config (secrets included) and rotating credentials.
  twin::CommandResult shown = session.execute("show config r9");
  EXPECT_TRUE(shown.ok);
  EXPECT_NE(shown.output.find(production.device(DeviceId("r9")).secrets().snmp_community),
            std::string::npos);
  EXPECT_TRUE(session.execute("secret r9 enable_password attacker-owned").ok);
  EXPECT_EQ(session.history().size(), 2u);
}

TEST(Rmm, CommitPushesUnverifiedChanges) {
  Network production = scen::build_enterprise();
  auto policies = scen::enterprise_policies(production);
  RmmServer server(production);
  server.register_user({"tech", "pw", false});
  RmmSession session = server.open_session({"tech", "pw", false});

  // A policy-violating change sails straight through the baseline.
  session.execute("acl r9 DMZ_IN add 0 permit ip 10.0.20.0 0.0.0.255 10.0.8.0 0.0.0.255");
  EXPECT_EQ(session.commit(), 1u);
  EXPECT_FALSE(spec::PolicyVerifier(policies).verify_network(production).ok());
}

// ----------------------------------------------------------------- latency --

TEST(Latency, ReadCommandsCostMore) {
  LatencyModel latency;
  auto mutate_cost = latency.command_cost(twin::parse_command("interface r1 Gi0/0 down"));
  auto read_cost = latency.command_cost(twin::parse_command("show routes r1"));
  EXPECT_EQ(mutate_cost, latency.command_type_ms);
  EXPECT_EQ(read_cost, latency.command_type_ms + latency.show_read_ms);
}

// --------------------------------------------------------------- workflows --

struct WorkflowFixture {
  Network healthy = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(healthy);
  std::vector<scen::IssueSpec> issues = scen::enterprise_issues();

  const scen::IssueSpec& issue(const std::string& key) const {
    for (const scen::IssueSpec& candidate : issues)
      if (candidate.key == key) return candidate;
    throw util::NotFoundError("no issue " + key);
  }
};

TEST(Workflow, CurrentResolvesVlanIssue) {
  WorkflowFixture fixture;
  const scen::IssueSpec& issue = fixture.issue("vlan");
  Network production = fixture.healthy;
  issue.inject(production);
  Technician technician;
  WorkflowResult result =
      run_current_workflow(production, issue.ticket, issue.fix_script, technician, issue.resolved);
  EXPECT_TRUE(result.issue_resolved);
  EXPECT_EQ(result.steps.size(), 3u);
  EXPECT_NE(result.step("operate"), nullptr);
  EXPECT_GT(result.total_ms(), 0.0);
}

TEST(Workflow, HeimdallResolvesWithBoundedOverhead) {
  WorkflowFixture fixture;
  const scen::IssueSpec& issue = fixture.issue("vlan");
  Technician technician;

  Network current_production = fixture.healthy;
  issue.inject(current_production);
  WorkflowResult current = run_current_workflow(current_production, issue.ticket,
                                                issue.fix_script, technician, issue.resolved);

  Network heimdall_production = fixture.healthy;
  issue.inject(heimdall_production);
  enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(fixture.policies),
                                   enforce::SimulatedEnclave("v1", "hw"));
  WorkflowResult heimdall =
      run_heimdall_workflow(heimdall_production, enforcer, issue.ticket, issue.fix_script,
                            technician, issue.resolved);

  EXPECT_TRUE(current.issue_resolved);
  EXPECT_TRUE(heimdall.issue_resolved);
  // Heimdall is slower (twin setup + verification) but same order of
  // magnitude - the paper's Figure 7 shape.
  EXPECT_GT(heimdall.total_ms(), current.total_ms());
  EXPECT_LT(heimdall.total_ms(), current.total_ms() * 4.0);
  EXPECT_NE(heimdall.step("twin-setup"), nullptr);
  EXPECT_NE(heimdall.step("verify+schedule"), nullptr);
}

TEST(Workflow, HeimdallBlocksWhatCurrentAllows) {
  // The insider attack rides the vlan ticket: fix + malicious extra command.
  WorkflowFixture fixture;
  const scen::IssueSpec& issue = fixture.issue("vlan");
  std::vector<std::string> attack_script = issue.fix_script;
  attack_script.push_back("acl r9 DMZ_IN add 0 permit ip 10.0.20.0 0.0.0.255 10.0.8.0 0.0.0.255");
  Technician technician;

  // Baseline: attack lands in production.
  Network current_production = fixture.healthy;
  issue.inject(current_production);
  run_current_workflow(current_production, issue.ticket, attack_script, technician,
                       issue.resolved);
  EXPECT_FALSE(spec::PolicyVerifier(fixture.policies).verify_network(current_production).ok());

  // Heimdall: the malicious command dies at the reference monitor (r9 is
  // not even in the twin slice), the fix still applies.
  Network heimdall_production = fixture.healthy;
  issue.inject(heimdall_production);
  enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(fixture.policies),
                                   enforce::SimulatedEnclave("v1", "hw"));
  WorkflowResult result =
      run_heimdall_workflow(heimdall_production, enforcer, issue.ticket, attack_script,
                            technician, issue.resolved);
  EXPECT_TRUE(result.issue_resolved);
  EXPECT_GT(result.commands_denied, 0u);
  EXPECT_TRUE(spec::PolicyVerifier(fixture.policies).verify_network(heimdall_production).ok());
}

// ----------------------------------------------------------------- metrics --

TEST(Metrics, CatalogCountsDeterministic) {
  Network production = scen::build_enterprise();
  const Device& r9 = production.device(DeviceId("r9"));
  auto catalog = device_command_catalog(r9);
  EXPECT_FALSE(catalog.empty());
  EXPECT_EQ(catalog.size(), device_command_catalog(r9).size());
  // Hosts have fewer commands than routers.
  auto host_catalog = device_command_catalog(production.device(DeviceId("h1")));
  EXPECT_LT(host_catalog.size(), catalog.size());
}

TEST(Metrics, ProbesCoverDeviceSurface) {
  Network production = scen::build_enterprise();
  auto probes = device_attack_probes(production.device(DeviceId("r9")));
  bool has_shutdown = false, has_acl = false, has_unbind = false;
  for (const AttackProbe& probe : probes) {
    has_shutdown |= probe.action == Action::InterfaceDown;
    has_acl |= probe.action == Action::AclEdit;
    has_unbind |= probe.action == Action::BindAcl;
  }
  EXPECT_TRUE(has_shutdown);
  EXPECT_TRUE(has_acl);
  EXPECT_TRUE(has_unbind);
}

TEST(Metrics, AttackSurfaceOrdering) {
  // The paper's headline: All >= Heimdall, with a substantial gap; and
  // Heimdall stays feasible.
  Network production = scen::build_enterprise();
  spec::PolicyVerifier policies(scen::enterprise_policies(production));

  dp::Dataplane dataplane = dp::Dataplane::compute(production);
  Ticket ticket = Ticket::connectivity(1, DeviceId("h2"), DeviceId("h4"), "x",
                                       priv::TaskClass::Connectivity);

  auto accessible = [&](twin::SliceStrategy strategy) {
    return twin::compute_slice(production, dataplane, ticket, strategy).devices;
  };

  SurfaceQuery all_query{accessible(twin::SliceStrategy::All), nullptr};
  SurfaceQuery neighbor_query{accessible(twin::SliceStrategy::Neighbor), nullptr};

  twin::Slice heimdall_slice =
      twin::compute_slice(production, dataplane, ticket, twin::SliceStrategy::TaskDriven);
  Network sliced = twin::materialize_slice(production, heimdall_slice);
  priv::PrivilegeSpec privileges =
      priv::generate_privileges(sliced, priv::TaskClass::Connectivity);
  SurfaceQuery heimdall_query{heimdall_slice.devices, &privileges};

  SurfaceResult all = compute_attack_surface(production, policies, all_query);
  SurfaceResult neighbor = compute_attack_surface(production, policies, neighbor_query);
  SurfaceResult heimdall = compute_attack_surface(production, policies, heimdall_query);

  EXPECT_GT(all.surface_pct, heimdall.surface_pct);
  EXPECT_GT(all.surface_pct, neighbor.surface_pct);
  EXPECT_GT(heimdall.surface_pct, 0.0);
  EXPECT_LE(all.surface_pct, 100.0);
  // All exposes every command on every node.
  EXPECT_EQ(all.allowed_commands, all.available_commands);
}

TEST(Metrics, FeasibilityRules) {
  Network production = scen::build_enterprise();
  SurfaceQuery root_everywhere{{DeviceId("r7"), DeviceId("h2")}, nullptr};
  EXPECT_TRUE(is_feasible(DeviceId("r7"), production, root_everywhere));
  EXPECT_FALSE(is_feasible(DeviceId("r9"), production, root_everywhere));

  // With privileges: accessible but no mutating rights => infeasible.
  priv::PrivilegeSpec read_only;
  read_only.allow(priv::read_only_actions(), priv::Resource::whole_device(DeviceId("r7")));
  SurfaceQuery read_query{{DeviceId("r7")}, &read_only};
  EXPECT_FALSE(is_feasible(DeviceId("r7"), production, read_query));

  priv::PrivilegeSpec with_mutation = read_only;
  with_mutation.allow({Action::SetSwitchport}, priv::Resource::whole_device(DeviceId("r7")));
  SurfaceQuery mutate_query{{DeviceId("r7")}, &with_mutation};
  EXPECT_TRUE(is_feasible(DeviceId("r7"), production, mutate_query));
}

// ---------------------------------------------------------------- attacker --

TEST(Attacker, ScriptsAreWellFormedCommands) {
  AttackScript exfiltration =
      data_exfiltration_attack({DeviceId("r1"), DeviceId("r9")});
  AttackScript erase = careless_erase(DeviceId("r6"));
  AttackScript insider = insider_acl_attack(
      DeviceId("r9"), "DMZ_IN", "acl r9 DMZ_IN remove 0",
      "permit ip 10.0.20.0 0.0.0.255 10.0.8.0 0.0.0.255");
  for (const AttackScript* script : {&exfiltration, &erase, &insider}) {
    EXPECT_FALSE(script->commands.empty());
    for (const std::string& line : script->commands) {
      EXPECT_NO_THROW(twin::parse_command(line)) << line;
    }
  }
}

TEST(Attacker, ExfiltrationBlockedByTwin) {
  Network production = scen::build_enterprise();
  dp::Dataplane dataplane = dp::Dataplane::compute(production);
  Ticket ticket = Ticket::connectivity(9, DeviceId("h2"), DeviceId("h4"), "cover ticket",
                                       priv::TaskClass::VlanIssue);
  twin::TwinNetwork twin = twin::TwinNetwork::create(production, dataplane, ticket);

  AttackScript attack = data_exfiltration_attack(production.device_ids(DeviceKind::Router));
  std::size_t leaked_secrets = 0;
  for (const std::string& line : attack.commands) {
    twin::CommandResult result = twin.run(line);
    if (!result.ok) continue;
    // Even permitted reads only ever show scrubbed configs.
    for (const Device& device : production.devices()) {
      if (!device.secrets().empty() &&
          result.output.find(device.secrets().snmp_community) != std::string::npos)
        ++leaked_secrets;
    }
  }
  EXPECT_EQ(leaked_secrets, 0u);
  EXPECT_GT(twin.monitor().denied_count(), 0u);
}

}  // namespace
}  // namespace heimdall::msp
