// Edge-case coverage across modules: L2 corner topologies, FIB semantics,
// empty inputs, infeasible workflows, and metric boundary conditions.
#include <gtest/gtest.h>

#include "config/parse.hpp"
#include "config/serialize.hpp"
#include "dataplane/reachability.hpp"
#include "msp/metrics.hpp"
#include "msp/workflow.hpp"
#include "scenarios/builder.hpp"
#include "scenarios/enterprise.hpp"
#include "util/error.hpp"

namespace heimdall {
namespace {

using namespace heimdall::net;

// ------------------------------------------------------------------- L2 ----

TEST(L2Edge, TrunkWithoutVlanBlocksDomain) {
  // Two switches, hosts in VLAN 30 on both sides, but the trunk only allows
  // VLAN 10: the hosts stay separated.
  Network network("edge");
  for (const char* name : {"sw1", "sw2"}) {
    Device sw(DeviceId(name), DeviceKind::Switch);
    sw.vlans() = {10, 30};
    Interface access;
    access.id = InterfaceId("Fa0/1");
    access.mode = SwitchportMode::Access;
    access.access_vlan = 30;
    sw.add_interface(access);
    Interface trunk;
    trunk.id = InterfaceId("Gi0/1");
    trunk.mode = SwitchportMode::Trunk;
    trunk.trunk_allowed = {10};
    sw.add_interface(trunk);
    network.add_device(std::move(sw));
  }
  network.add_device(scen::make_host("ha", Ipv4Address::parse("10.0.0.1"), 24,
                                     Ipv4Address::parse("10.0.0.254")));
  network.add_device(scen::make_host("hb", Ipv4Address::parse("10.0.0.2"), 24,
                                     Ipv4Address::parse("10.0.0.254")));
  network.connect({DeviceId("sw1"), InterfaceId("Fa0/1")}, {DeviceId("ha"), InterfaceId("eth0")});
  network.connect({DeviceId("sw2"), InterfaceId("Fa0/1")}, {DeviceId("hb"), InterfaceId("eth0")});
  network.connect({DeviceId("sw1"), InterfaceId("Gi0/1")}, {DeviceId("sw2"), InterfaceId("Gi0/1")});

  dp::L2Domains domains = dp::L2Domains::compute(network);
  EXPECT_FALSE(domains.adjacent({DeviceId("ha"), InterfaceId("eth0")},
                                {DeviceId("hb"), InterfaceId("eth0")}));
}

TEST(L2Edge, SegmentQueriesOnUnknownEndpoints) {
  Network network = scen::build_enterprise();
  dp::L2Domains domains = dp::L2Domains::compute(network);
  EXPECT_FALSE(domains.segment_of({DeviceId("ghost"), InterfaceId("e0")}).has_value());
  // An L2-only access port has no segment entry of its own (only L3
  // endpoints are tracked).
  EXPECT_FALSE(domains.segment_of({DeviceId("r7"), InterfaceId("Fa0/1")}).has_value());
  // resolve_ip misses return nullopt.
  auto segment = domains.segment_of({DeviceId("h1"), InterfaceId("eth0")});
  ASSERT_TRUE(segment.has_value());
  EXPECT_FALSE(
      domains.resolve_ip(*segment, Ipv4Address::parse("203.0.113.1"), network).has_value());
  EXPECT_TRUE(domains.members(*segment).size() >= 2);
}

// ------------------------------------------------------------------ FIB ----

TEST(FibEdge, RouteForIsExactNotCovering) {
  dp::Fib fib;
  dp::Route route;
  route.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  route.protocol = dp::RouteProtocol::Static;
  route.out_iface = InterfaceId("e0");
  fib.insert(route);
  // lookup() covers, route_for() does not.
  EXPECT_TRUE(fib.lookup(Ipv4Address::parse("10.1.2.3")).has_value());
  EXPECT_FALSE(fib.route_for(Ipv4Prefix::parse("10.1.0.0/16")).has_value());
  EXPECT_TRUE(fib.route_for(Ipv4Prefix::parse("10.0.0.0/8")).has_value());
}

TEST(FibEdge, EmptyFibAndRenderings) {
  dp::Fib fib;
  EXPECT_TRUE(fib.empty());
  EXPECT_FALSE(fib.lookup(Ipv4Address::parse("1.2.3.4")).has_value());
  dp::Route route;
  route.prefix = Ipv4Prefix::parse("0.0.0.0/0");
  route.protocol = dp::RouteProtocol::Ospf;
  route.next_hop = Ipv4Address::parse("10.0.0.1");
  route.out_iface = InterfaceId("Gi0/0");
  route.admin_distance = 110;
  route.metric = 30;
  EXPECT_EQ(route.to_string(), "ospf 0.0.0.0/0 via 10.0.0.1 dev Gi0/0 [110/30]");
  for (auto disposition :
       {dp::Disposition::Delivered, dp::Disposition::DeniedInbound, dp::Disposition::NoRoute,
        dp::Disposition::Loop, dp::Disposition::SourceDown}) {
    EXPECT_FALSE(dp::to_string(disposition).empty());
  }
}

// --------------------------------------------------------------- config ----

TEST(ConfigEdge, EmptyAndBannerOnlyNetworks) {
  Network empty = cfg::parse_network("");
  EXPECT_TRUE(empty.devices().empty());
  Network one = cfg::parse_network("!=== device r1 ===\nhostname r1\nend\n");
  EXPECT_EQ(one.devices().size(), 1u);
  EXPECT_EQ(one.devices().front().id().str(), "r1");
}

TEST(ConfigEdge, TopologyParseValidatesEndpoints) {
  Network network("t");
  network.add_device(Device(DeviceId("a"), DeviceKind::Router));
  EXPECT_THROW(cfg::parse_topology("link a:e0 b:e0", network), util::Error);
  EXPECT_THROW(cfg::parse_topology("link malformed", network), util::ParseError);
  EXPECT_THROW(cfg::parse_topology("link a-e0 b-e0", network), util::ParseError);
  // Comments and blanks are fine.
  cfg::parse_topology("# comment\n\n! another\n", network);
}

TEST(ConfigEdge, SerializeNetworkRoundTripsDeviceCount) {
  Network network = scen::build_enterprise();
  Network parsed = cfg::parse_network(cfg::serialize_network(network));
  EXPECT_EQ(parsed.devices().size(), network.devices().size());
}

// ------------------------------------------------------------- workflow ----

TEST(WorkflowEdge, NeighborStrategyIsInfeasibleForOspfIssue) {
  // The paper's Figure 5c story as an end-to-end run: under the Neighbor
  // strategy the root cause (r5) is not in the twin, so the prepared fix is
  // denied and the issue stays unresolved — while TaskDriven succeeds.
  Network healthy = scen::build_enterprise();
  auto policies = scen::enterprise_policies(healthy);
  scen::IssueSpec issue;
  for (scen::IssueSpec& candidate : scen::enterprise_issues()) {
    if (candidate.key == "ospf") issue = std::move(candidate);
  }

  for (auto strategy : {twin::SliceStrategy::Neighbor, twin::SliceStrategy::TaskDriven}) {
    Network production = healthy;
    issue.inject(production);
    enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(policies),
                                     enforce::SimulatedEnclave("v1", "hw"));
    msp::Technician technician;
    msp::WorkflowResult result = msp::run_heimdall_workflow(
        production, enforcer, issue.ticket, issue.fix_script, technician, issue.resolved,
        strategy);
    if (strategy == twin::SliceStrategy::Neighbor) {
      EXPECT_GT(result.commands_denied, 0u);
      EXPECT_FALSE(result.issue_resolved);
    } else {
      EXPECT_EQ(result.commands_denied, 0u);
      EXPECT_TRUE(result.issue_resolved);
    }
  }
}

// -------------------------------------------------------------- metrics ----

TEST(MetricsEdge, EmptyAccessibleSetScoresZero) {
  Network production = scen::build_enterprise();
  spec::PolicyVerifier policies(scen::enterprise_policies(production));
  msp::SurfaceResult result =
      msp::compute_attack_surface(production, policies, {{}, nullptr});
  EXPECT_EQ(result.allowed_commands, 0u);
  EXPECT_EQ(result.violable_policies, 0u);
  EXPECT_DOUBLE_EQ(result.surface_pct, 0.0);
  EXPECT_GT(result.available_commands, 0u);
  EXPECT_FALSE(msp::is_feasible(DeviceId("r1"), production, {{}, nullptr}));
}

TEST(MetricsEdge, HostsYieldOnlyInterfaceProbes) {
  Network production = scen::build_enterprise();
  auto probes = msp::device_attack_probes(production.device(DeviceId("h1")));
  // Shut the single NIC + remove the default route: nothing ACL/OSPF/VLAN.
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_EQ(probes[0].action, priv::Action::InterfaceDown);
  EXPECT_EQ(probes[1].action, priv::Action::StaticRouteRemove);
}

// ----------------------------------------------------------- escalation ----

TEST(EscalationEdge, EmptySliceRejectsEverything) {
  priv::EscalationPolicy policy(priv::TaskClass::Connectivity, {});
  EXPECT_EQ(policy
                .assess({priv::Action::ShowConfig,
                         priv::Resource::whole_device(DeviceId("r1")), "?"})
                .verdict,
            priv::EscalationVerdict::Rejected);
}

// -------------------------------------------------------------- tickets ----

TEST(TicketEdge, StateNamesComplete) {
  using msp::TicketState;
  for (TicketState state : {TicketState::Open, TicketState::InProgress, TicketState::Resolved,
                            TicketState::Closed}) {
    EXPECT_FALSE(to_string(state).empty());
  }
}

}  // namespace
}  // namespace heimdall
