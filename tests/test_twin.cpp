// Unit + integration tests for the twin network: slicing, scrubbing, the
// console grammar, the emulation layer, the reference monitor, escalation.
#include <gtest/gtest.h>

#include "config/serialize.hpp"
#include "scenarios/enterprise.hpp"
#include "twin/presentation.hpp"
#include "twin/twin.hpp"
#include "util/error.hpp"

namespace heimdall::twin {
namespace {

using namespace heimdall::net;
using priv::Action;

msp::Ticket vlan_ticket() {
  return msp::Ticket::connectivity(1, DeviceId("h2"), DeviceId("h4"), "h2 cannot reach h4",
                                   priv::TaskClass::VlanIssue);
}

struct BrokenEnterprise {
  Network production;
  dp::Dataplane dataplane;

  BrokenEnterprise() : production(scen::build_enterprise()), dataplane(dp::Dataplane::compute(production)) {
    production.device(DeviceId("r7")).interface(InterfaceId("Fa0/2")).access_vlan = 10;
    dataplane = dp::Dataplane::compute(production);
  }
};

// ---------------------------------------------------------------- slicing --

TEST(Slice, AllIncludesEverything) {
  BrokenEnterprise fixture;
  Slice slice = compute_slice(fixture.production, fixture.dataplane, vlan_ticket(),
                              SliceStrategy::All);
  EXPECT_EQ(slice.devices.size(), fixture.production.devices().size());
}

TEST(Slice, NeighborIsAffectedPlusAdjacent) {
  BrokenEnterprise fixture;
  Slice slice = compute_slice(fixture.production, fixture.dataplane, vlan_ticket(),
                              SliceStrategy::Neighbor);
  // h2 + h4 + their access switches r7 + r8.
  EXPECT_EQ(slice.devices, (std::set<DeviceId>{DeviceId("h2"), DeviceId("h4"), DeviceId("r7"),
                                               DeviceId("r8")}));
}

TEST(Slice, TaskDrivenIncludesRootCauseButNotWholeNetwork) {
  BrokenEnterprise fixture;
  Slice slice = compute_slice(fixture.production, fixture.dataplane, vlan_ticket(),
                              SliceStrategy::TaskDriven);
  EXPECT_TRUE(slice.contains(DeviceId("r7")));  // root cause
  EXPECT_TRUE(slice.contains(DeviceId("h2")));
  EXPECT_TRUE(slice.contains(DeviceId("h4")));
  EXPECT_LT(slice.devices.size(), fixture.production.devices().size());
  // DMZ and border are irrelevant to this ticket.
  EXPECT_FALSE(slice.contains(DeviceId("h8")));
  EXPECT_FALSE(slice.contains(DeviceId("ext")));
  EXPECT_FALSE(slice.rationale.empty());
}

TEST(Slice, MaterializeDropsCrossBoundaryLinks) {
  BrokenEnterprise fixture;
  Slice slice = compute_slice(fixture.production, fixture.dataplane, vlan_ticket(),
                              SliceStrategy::Neighbor);
  Network sliced = materialize_slice(fixture.production, slice);
  EXPECT_EQ(sliced.devices().size(), slice.devices.size());
  for (const Link& link : sliced.topology().links()) {
    EXPECT_TRUE(slice.contains(link.a.device));
    EXPECT_TRUE(slice.contains(link.b.device));
  }
}

// --------------------------------------------------------------- scrubbing --

TEST(Scrub, RemovesAllSecrets) {
  Network network = scen::build_enterprise();
  EXPECT_FALSE(is_scrubbed(network));
  std::size_t scrubbed = scrub_network(network);
  EXPECT_EQ(scrubbed, 9u * 3u);  // 9 routers x 3 secret fields
  EXPECT_TRUE(is_scrubbed(network));
  // Idempotent.
  EXPECT_EQ(scrub_network(network), 0u);
}

TEST(Scrub, ScrubbedConfigContainsNoSecretValues) {
  Network network = scen::build_enterprise();
  const Device& r1 = network.device(DeviceId("r1"));
  std::string original_key = r1.secrets().ipsec_key;
  scrub_network(network);
  std::string config = cfg::serialize_device(network.device(DeviceId("r1")));
  EXPECT_EQ(config.find(original_key), std::string::npos);
  EXPECT_NE(config.find(kScrubToken), std::string::npos);
}

// ----------------------------------------------------------------- console --

TEST(Console, ParsesReads) {
  ParsedCommand command = parse_command("show routes r5");
  EXPECT_EQ(command.action, Action::ShowRoutes);
  EXPECT_EQ(command.resource.device, "r5");

  command = parse_command("ping h2 h4");
  EXPECT_EQ(command.action, Action::Ping);
  EXPECT_EQ(command.args, (std::vector<std::string>{"h2", "h4"}));

  command = parse_command("show topology");
  EXPECT_EQ(command.action, Action::ShowTopology);
}

TEST(Console, ParsesInterfaceOps) {
  ParsedCommand command = parse_command("interface r7 Fa0/2 switchport-access-vlan 20");
  EXPECT_EQ(command.action, Action::SetSwitchport);
  EXPECT_EQ(command.resource.kind, priv::ObjectKind::Interface);
  EXPECT_EQ(command.resource.name, "Fa0/2");

  command = parse_command("interface r1 Gi0/0 down");
  EXPECT_EQ(command.action, Action::InterfaceDown);
  command = parse_command("interface r1 Gi0/0 address 10.1.12.5 255.255.255.252");
  EXPECT_EQ(command.action, Action::SetInterfaceAddress);
  command = parse_command("interface r1 Gi0/0 no-access-group in");
  EXPECT_EQ(command.action, Action::BindAcl);
  EXPECT_EQ(command.args, (std::vector<std::string>{"", "in"}));
}

TEST(Console, ParsesAclRouteOspfVlan) {
  ParsedCommand command =
      parse_command("acl r9 DMZ_IN add 0 permit icmp 10.0.20.0 0.0.0.255 10.0.7.0 0.0.0.255");
  EXPECT_EQ(command.action, Action::AclEdit);
  EXPECT_EQ(command.resource.name, "DMZ_IN");
  EXPECT_EQ(command.args.front(), "0");

  command = parse_command("acl r9 DMZ_IN remove 2");
  EXPECT_EQ(command.args, (std::vector<std::string>{"remove", "2"}));

  command = parse_command("route r6 add 0.0.0.0 0.0.0.0 10.1.16.1");
  EXPECT_EQ(command.action, Action::StaticRouteAdd);

  command = parse_command("ospf r5 network-add 10.1.58.0 0.0.0.3 area 0");
  EXPECT_EQ(command.action, Action::OspfNetworkEdit);

  command = parse_command("vlan r7 add 30");
  EXPECT_EQ(command.action, Action::VlanEdit);
  EXPECT_EQ(command.resource.kind, priv::ObjectKind::VlanObject);
}

TEST(Console, ParsesHighImpact) {
  EXPECT_EQ(parse_command("secret r1 enable_password pwned").action, Action::ChangeSecret);
  EXPECT_EQ(parse_command("reboot r1").action, Action::Reboot);
  EXPECT_EQ(parse_command("erase r1").action, Action::EraseConfig);
  EXPECT_EQ(parse_command("save r1").action, Action::SaveConfig);
}

TEST(Console, RejectsMalformed) {
  for (const char* bad :
       {"", "bogus r1", "show", "show widgets r1", "ping h1", "interface r1", "interface r1 e0",
        "interface r1 e0 levitate", "acl r1", "acl r1 X frob", "route r1 add 1.2.3.4",
        "vlan r1 add notanumber", "ospf r1 network-add 1.1.1.0 0.0.0.3 zone 0"}) {
    EXPECT_THROW(parse_command(bad), util::ParseError) << bad;
  }
}

// --------------------------------------------------------------- emulation --

class EmulationTest : public ::testing::Test {
 protected:
  EmulationTest() : emulation_(scen::build_enterprise()) {}

  CommandResult run(const std::string& line) { return emulation_.execute(parse_command(line)); }

  EmulationLayer emulation_;
};

TEST_F(EmulationTest, ShowCommandsRender) {
  EXPECT_NE(run("show config r1").output.find("hostname r1"), std::string::npos);
  EXPECT_NE(run("show interfaces r7").output.find("Fa0/2"), std::string::npos);
  EXPECT_NE(run("show routes r1").output.find("ospf"), std::string::npos);
  EXPECT_NE(run("show acls r9").output.find("DMZ_IN"), std::string::npos);
  EXPECT_NE(run("show ospf r5").output.find("neighbors"), std::string::npos);
  EXPECT_NE(run("show vlans r7").output.find("10"), std::string::npos);
  EXPECT_NE(run("show topology").output.find("r1 (router)"), std::string::npos);
}

TEST_F(EmulationTest, PingReflectsDataplane) {
  EXPECT_TRUE(run("ping h1 h4").ok);
  EXPECT_FALSE(run("ping h2 h7").ok);  // DMZ_IN denies
  CommandResult trace = run("traceroute h1 h4");
  EXPECT_NE(trace.output.find("path:"), std::string::npos);
}

TEST_F(EmulationTest, MutationsApplyAndRecomputeDataplane) {
  EXPECT_TRUE(run("ping h2 h4").ok);
  CommandResult result = run("interface r7 Fa0/2 switchport-access-vlan 10");
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.changes.size(), 1u);
  EXPECT_FALSE(run("ping h2 h4").ok);  // broke it
  EXPECT_TRUE(run("interface r7 Fa0/2 switchport-access-vlan 20").ok);
  EXPECT_TRUE(run("ping h2 h4").ok);  // fixed again
}

TEST_F(EmulationTest, SemanticFailuresDoNotThrow) {
  EXPECT_FALSE(run("show config ghost").ok);
  EXPECT_FALSE(run("acl r1 NO_SUCH add permit ip any any").ok);
  EXPECT_FALSE(run("route r1 remove 99.0.0.0 255.0.0.0 10.1.12.2").ok);
  EXPECT_FALSE(run("vlan r7 add 10").ok);  // already declared
  EXPECT_FALSE(run("acl r9 DMZ_IN remove 99").ok);
}

TEST_F(EmulationTest, SessionChangesDiffOriginal) {
  EXPECT_TRUE(emulation_.session_changes().empty());
  run("interface r6 Gi0/0 ospf-cost 50");
  run("route r6 add 192.0.2.0 255.255.255.0 10.1.16.1");
  auto changes = emulation_.session_changes();
  EXPECT_EQ(changes.size(), 2u);
  // Undo one: only the other remains.
  run("route r6 remove 192.0.2.0 255.255.255.0 10.1.16.1");
  changes = emulation_.session_changes();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_NE(changes[0].summary().find("ospf cost"), std::string::npos);
}

TEST_F(EmulationTest, EraseConfigIsCatastrophic) {
  CommandResult result = run("erase r6");
  EXPECT_TRUE(result.ok);
  EXPECT_GT(result.changes.size(), 3u);
  EXPECT_FALSE(run("ping ext h1").ok);
}

TEST_F(EmulationTest, DataplaneRecomputeIsLazy) {
  std::size_t before = emulation_.recompute_count();
  run("show config r1");  // no dataplane needed
  EXPECT_EQ(emulation_.recompute_count(), before);
  run("ping h1 h4");
  run("ping h1 h5");  // cached
  EXPECT_EQ(emulation_.recompute_count(), before + 1);
  run("interface r7 Fa0/2 switchport-access-vlan 10");
  run("ping h1 h4");
  EXPECT_EQ(emulation_.recompute_count(), before + 2);
}

TEST_F(EmulationTest, RebootRevertsUnsavedChanges) {
  // Unsaved running-config changes vanish on reload...
  run("interface r6 Gi0/0 ospf-cost 77");
  EXPECT_EQ(emulation_.session_changes().size(), 1u);
  CommandResult reboot = run("reboot r6");
  EXPECT_TRUE(reboot.ok);
  EXPECT_NE(reboot.output.find("1 unsaved change(s) lost"), std::string::npos);
  EXPECT_TRUE(emulation_.session_changes().empty());
}

TEST_F(EmulationTest, SavePersistsAcrossReboot) {
  run("interface r6 Gi0/0 ospf-cost 77");
  run("save r6");
  run("interface r6 Gi0/1 ospf-cost 88");  // second change stays unsaved
  run("reboot r6");
  auto changes = emulation_.session_changes();
  ASSERT_EQ(changes.size(), 1u);  // only the saved change survived
  EXPECT_NE(changes[0].summary().find("Gi0/0"), std::string::npos);
}

TEST_F(EmulationTest, RebootOnlyAffectsOneDevice) {
  run("interface r6 Gi0/0 ospf-cost 77");
  run("interface r5 Gi0/3 ospf-cost 55");
  run("reboot r6");
  auto changes = emulation_.session_changes();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].device, DeviceId("r5"));
}

TEST_F(EmulationTest, RebootTemporarilyDropsConnectivity) {
  // The paper's continuous-verification false-positive: a reboot of the
  // (pre-save) fixed device transiently reverts the fix.
  run("interface r7 Fa0/2 switchport-access-vlan 10");  // break
  run("save r7");                                       // persist the break
  run("interface r7 Fa0/2 switchport-access-vlan 20");  // fix (unsaved)
  EXPECT_TRUE(run("ping h2 h4").ok);
  run("reboot r7");  // fix lost: back to broken startup config
  EXPECT_FALSE(run("ping h2 h4").ok);
}

// ----------------------------------------------------------------- monitor --

TEST(Monitor, DeniesOutsidePrivilege) {
  priv::PrivilegeSpec spec;
  spec.allow({Action::Ping}, priv::Resource::whole_device(DeviceId("h1")));
  ReferenceMonitor monitor(spec);
  EmulationLayer emulation(scen::build_enterprise());

  CommandResult allowed = monitor.mediate(emulation, parse_command("ping h1 h4"));
  EXPECT_TRUE(allowed.ok);
  CommandResult denied = monitor.mediate(emulation, parse_command("show config r9"));
  EXPECT_FALSE(denied.ok);
  EXPECT_NE(denied.output.find("DENIED"), std::string::npos);

  ASSERT_EQ(monitor.session_log().size(), 2u);
  EXPECT_TRUE(monitor.session_log()[0].permitted);
  EXPECT_FALSE(monitor.session_log()[1].permitted);
  EXPECT_EQ(monitor.denied_count(), 1u);
}

TEST(Monitor, DeniedMutationNeverReachesEmulation) {
  priv::PrivilegeSpec spec;  // empty: deny everything
  ReferenceMonitor monitor(spec);
  EmulationLayer emulation(scen::build_enterprise());
  monitor.mediate(emulation, parse_command("interface r7 Fa0/2 switchport-access-vlan 10"));
  EXPECT_TRUE(emulation.session_changes().empty());
}

// ------------------------------------------------------------ presentation --

TEST(Presentation, DotRendersAllDevicesAndLinks) {
  Network network = scen::build_enterprise();
  network.device(DeviceId("r7")).interface(InterfaceId("Fa0/2")).shutdown = true;
  std::string dot = render_topology_dot(network);
  EXPECT_NE(dot.find("graph \"enterprise\""), std::string::npos);
  for (const Device& device : network.devices()) {
    EXPECT_NE(dot.find("\"" + device.id().str() + "\""), std::string::npos) << device.id().str();
  }
  // 22 links rendered.
  std::size_t edges = 0, position = 0;
  while ((position = dot.find(" -- ", position)) != std::string::npos) {
    ++edges;
    position += 4;
  }
  EXPECT_EQ(edges, 22u);
  // The shut port's link renders dashed.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Presentation, InventoryListsInterfacesAndAddresses) {
  Network network = scen::build_enterprise();
  std::string inventory = render_inventory(network);
  EXPECT_NE(inventory.find("r9"), std::string::npos);
  EXPECT_NE(inventory.find("10.0.7.1/24"), std::string::npos);
  EXPECT_NE(inventory.find("Vlan10"), std::string::npos);
  network.device(DeviceId("r9")).interface(InterfaceId("Gi0/1")).shutdown = true;
  EXPECT_NE(render_inventory(network).find("(down)"), std::string::npos);
}

// ------------------------------------------------------------ twin facade --

TEST(Twin, EndToEndVlanFix) {
  BrokenEnterprise fixture;
  TwinNetwork twin = TwinNetwork::create(fixture.production, fixture.dataplane, vlan_ticket());

  EXPECT_GT(twin.scrubbed_secret_count(), 0u);
  EXPECT_TRUE(is_scrubbed(twin.emulation().network()));

  EXPECT_FALSE(twin.run("ping h2 h4").ok);
  EXPECT_TRUE(twin.run("interface r7 Fa0/2 switchport-access-vlan 20").ok);
  EXPECT_TRUE(twin.run("ping h2 h4").ok);

  auto changes = twin.extract_changes();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].device, DeviceId("r7"));
}

TEST(Twin, OutOfSliceAndOutOfClassDenied) {
  BrokenEnterprise fixture;
  TwinNetwork twin = TwinNetwork::create(fixture.production, fixture.dataplane, vlan_ticket());
  // r9 is not in the slice: even reads are denied.
  EXPECT_FALSE(twin.run("show config r9").ok);
  // ACL edit is out of class for a VLAN ticket.
  EXPECT_FALSE(twin.run("acl r7 X add permit ip any any").ok);
  // High-impact always denied.
  EXPECT_FALSE(twin.run("erase r7").ok);
  EXPECT_FALSE(twin.run("secret r7 enable_password pwn").ok);
  EXPECT_EQ(twin.monitor().denied_count(), 4u);
}

TEST(Twin, EscalationUnlocksAction) {
  BrokenEnterprise fixture;
  TwinNetwork twin = TwinNetwork::create(fixture.production, fixture.dataplane, vlan_ticket());
  std::string command = "interface r7 Fa0/1 down";
  // InterfaceDown is in-class for VLAN tickets; craft an out-of-class need:
  std::string acl_command = "acl r7 GUEST add permit ip any any";
  EXPECT_FALSE(twin.run(acl_command).ok);

  priv::EscalationRequest request{Action::AclEdit, priv::Resource::acl(DeviceId("r7"), "GUEST"),
                                  "suspect ACL interference"};
  priv::EscalationResult result = twin.request_escalation(request, /*admin_approved=*/true);
  EXPECT_EQ(result.verdict, priv::EscalationVerdict::RequiresAdmin);
  // Now permitted (fails semantically - no such ACL - but passes the monitor).
  CommandResult after = twin.run(acl_command);
  EXPECT_EQ(after.output.find("DENIED"), std::string::npos);
  (void)command;
}

TEST(Twin, RunScriptContinuesPastDenials) {
  BrokenEnterprise fixture;
  TwinNetwork twin = TwinNetwork::create(fixture.production, fixture.dataplane, vlan_ticket());
  auto results = twin.run_script({
      "show topology",
      "erase r7",  // denied
      "interface r7 Fa0/2 switchport-access-vlan 20",
      "ping h2 h4",
  });
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_TRUE(results[2].ok);
  EXPECT_TRUE(results[3].ok);
}

TEST(Twin, DetectsProductionDriftConflicts) {
  BrokenEnterprise fixture;
  TwinNetwork twin = TwinNetwork::create(fixture.production, fixture.dataplane, vlan_ticket());
  EXPECT_TRUE(twin.conflicts_with(fixture.production).empty());
  EXPECT_EQ(twin.baseline_fingerprints().size(), twin.slice().devices.size());

  // Out-of-band change on a slice device while the session is open.
  fixture.production.device(DeviceId("r4")).interface(InterfaceId("Gi0/1")).ospf_cost = 99;
  auto conflicts = twin.conflicts_with(fixture.production);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], DeviceId("r4"));

  // Changes to devices OUTSIDE the slice do not count as conflicts.
  fixture.production.device(DeviceId("r9")).interface(InterfaceId("Gi0/1")).ospf_cost = 77;
  EXPECT_EQ(twin.conflicts_with(fixture.production).size(), 1u);

  // A removed device is a conflict too.
  fixture.production.remove_device(DeviceId("r4"));
  EXPECT_EQ(twin.conflicts_with(fixture.production).size(), 1u);
}

TEST(Twin, SessionExportsToJson) {
  BrokenEnterprise fixture;
  TwinNetwork twin = TwinNetwork::create(fixture.production, fixture.dataplane, vlan_ticket());
  twin.run("ping h2 h4");
  twin.run("erase r7");  // denied
  util::Json json = twin.monitor().session_to_json();
  const auto& session = json.at("session").as_array();
  ASSERT_EQ(session.size(), 2u);
  EXPECT_TRUE(session[0].at("permitted").as_bool());
  EXPECT_EQ(session[0].at("action").as_string(), "ping");
  EXPECT_FALSE(session[1].at("permitted").as_bool());
  EXPECT_NE(session[1].at("decision").as_string().find("deny"), std::string::npos);
  // Round-trips as JSON text.
  EXPECT_EQ(util::Json::parse(json.dump(2)), json);
}

TEST(Twin, ChangesInsideTwinDoNotTouchProduction) {
  BrokenEnterprise fixture;
  Network pristine = fixture.production;
  TwinNetwork twin = TwinNetwork::create(fixture.production, fixture.dataplane, vlan_ticket());
  twin.run("interface r7 Fa0/2 switchport-access-vlan 20");
  EXPECT_EQ(fixture.production, pristine);
}

}  // namespace
}  // namespace heimdall::twin
