// Unit + property tests for IPv4 addresses, prefixes, interface addresses.
#include <gtest/gtest.h>

#include "netmodel/ipv4.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace heimdall::net {
namespace {

TEST(Ipv4Address, ParsesDottedQuad) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0").value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255").value(), 0xffffffffu);
  EXPECT_EQ(Ipv4Address::parse("10.0.1.2"), Ipv4Address::of(10, 0, 1, 2));
  EXPECT_EQ(Ipv4Address::parse("192.168.0.1").to_string(), "192.168.0.1");
}

TEST(Ipv4Address, RejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3",
                          "1.2.3.-4", "01x.2.3.4", "1.2.3.4 "}) {
    EXPECT_FALSE(Ipv4Address::try_parse(bad).has_value()) << bad;
    EXPECT_THROW(Ipv4Address::parse(bad), util::ParseError) << bad;
  }
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address::parse("10.0.0.1"), Ipv4Address::parse("10.0.0.2"));
  EXPECT_LT(Ipv4Address::parse("9.255.255.255"), Ipv4Address::parse("10.0.0.0"));
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  Ipv4Prefix prefix(Ipv4Address::parse("10.0.1.77"), 24);
  EXPECT_EQ(prefix.network().to_string(), "10.0.1.0");
  EXPECT_EQ(prefix.length(), 24u);
  EXPECT_EQ(prefix.to_string(), "10.0.1.0/24");
}

TEST(Ipv4Prefix, ParseAndMaskForms) {
  Ipv4Prefix prefix = Ipv4Prefix::parse("172.16.5.0/30");
  EXPECT_EQ(prefix.netmask().to_string(), "255.255.255.252");
  EXPECT_EQ(prefix.wildcard().to_string(), "0.0.0.3");
  EXPECT_EQ(prefix.broadcast().to_string(), "172.16.5.3");
  EXPECT_EQ(Ipv4Prefix::from_netmask(Ipv4Address::parse("172.16.5.1"),
                                     Ipv4Address::parse("255.255.255.252")),
            prefix);
}

TEST(Ipv4Prefix, ZeroAndFullLength) {
  Ipv4Prefix all = Ipv4Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(Ipv4Address::parse("1.2.3.4")));
  EXPECT_EQ(all.netmask().value(), 0u);
  Ipv4Prefix host = Ipv4Prefix::parse("10.1.1.1/32");
  EXPECT_TRUE(host.contains(Ipv4Address::parse("10.1.1.1")));
  EXPECT_FALSE(host.contains(Ipv4Address::parse("10.1.1.2")));
}

TEST(Ipv4Prefix, RejectsMalformed) {
  EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0"), util::ParseError);
  EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0/33"), util::ParseError);
  EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0/x"), util::ParseError);
  EXPECT_THROW(Ipv4Prefix::from_netmask(Ipv4Address(0), Ipv4Address::parse("255.0.255.0")),
               util::ParseError);
}

TEST(Ipv4Prefix, Containment) {
  Ipv4Prefix big = Ipv4Prefix::parse("10.0.0.0/8");
  Ipv4Prefix small = Ipv4Prefix::parse("10.1.2.0/24");
  Ipv4Prefix other = Ipv4Prefix::parse("192.168.0.0/16");
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.overlaps(small));
  EXPECT_TRUE(small.overlaps(big));
  EXPECT_FALSE(big.overlaps(other));
  EXPECT_TRUE(big.contains(big));
}

TEST(InterfaceAddress, PreservesHostBits) {
  InterfaceAddress address = InterfaceAddress::parse("10.0.1.77/24");
  EXPECT_EQ(address.ip.to_string(), "10.0.1.77");
  EXPECT_EQ(address.subnet().to_string(), "10.0.1.0/24");
  EXPECT_EQ(address.host_prefix().to_string(), "10.0.1.77/32");
  EXPECT_EQ(address.to_string(), "10.0.1.77/24");
  EXPECT_THROW(InterfaceAddress::parse("10.0.1.77"), util::ParseError);
}

// Property sweep: parse(to_string(x)) == x over random addresses/prefixes.
class Ipv4PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Ipv4PropertyTest, AddressRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Ipv4Address address(static_cast<std::uint32_t>(rng.next()));
    EXPECT_EQ(Ipv4Address::parse(address.to_string()), address);
  }
}

TEST_P(Ipv4PropertyTest, PrefixRoundTripAndInvariants) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    auto length = static_cast<unsigned>(rng.next_below(33));
    Ipv4Prefix prefix(Ipv4Address(static_cast<std::uint32_t>(rng.next())), length);
    EXPECT_EQ(Ipv4Prefix::parse(prefix.to_string()), prefix);
    // Network and broadcast both live inside the prefix.
    EXPECT_TRUE(prefix.contains(prefix.network()));
    EXPECT_TRUE(prefix.contains(prefix.broadcast()));
    // Netmask | wildcard covers all bits; netmask & wildcard is empty.
    EXPECT_EQ(prefix.netmask().value() | prefix.wildcard().value(), 0xffffffffu);
    EXPECT_EQ(prefix.netmask().value() & prefix.wildcard().value(), 0u);
    // from_netmask inverts netmask().
    EXPECT_EQ(Ipv4Prefix::from_netmask(prefix.network(), prefix.netmask()), prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ipv4PropertyTest, ::testing::Values(1, 42, 2026));

}  // namespace
}  // namespace heimdall::net
