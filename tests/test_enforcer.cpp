// Unit + integration tests for the policy enforcer: change classification,
// compliance, audit chain, simulated enclave, verifier, scheduler, façade,
// emergency mode.
#include <gtest/gtest.h>

#include "enforcer/enforcer.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "scenarios/adversary.hpp"
#include "scenarios/builder.hpp"
#include "scenarios/enterprise.hpp"
#include "twin/twin.hpp"

namespace heimdall::enforce {
namespace {

using namespace heimdall::net;
using cfg::ConfigChange;
using priv::Action;

ConfigChange shutdown_change(const char* device, const char* iface) {
  return {DeviceId(device), cfg::InterfaceAdminChange{InterfaceId(iface), false, true}};
}

// ----------------------------------------------------------- classification --

TEST(Compliance, ClassifiesEveryChangeKind) {
  struct Case {
    ConfigChange change;
    Action action;
    priv::ObjectKind kind;
  };
  StaticRoute route;
  route.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  route.next_hop = Ipv4Address::parse("10.1.1.1");
  Acl acl;
  acl.name = "A";
  std::vector<Case> cases = {
      {shutdown_change("r1", "e0"), Action::InterfaceDown, priv::ObjectKind::Interface},
      {{DeviceId("r1"), cfg::InterfaceAdminChange{InterfaceId("e0"), true, false}},
       Action::InterfaceUp, priv::ObjectKind::Interface},
      {{DeviceId("r1"), cfg::InterfaceAddressChange{InterfaceId("e0"), {}, {}}},
       Action::SetInterfaceAddress, priv::ObjectKind::Interface},
      {{DeviceId("r1"), cfg::InterfaceAclBindingChange{InterfaceId("e0"), cfg::AclDirection::In,
                                                       "", "X"}},
       Action::BindAcl, priv::ObjectKind::Interface},
      {{DeviceId("r1"), cfg::SwitchportChange{InterfaceId("e0")}}, Action::SetSwitchport,
       priv::ObjectKind::Interface},
      {{DeviceId("r1"), cfg::OspfCostChange{InterfaceId("e0"), {}, 5}}, Action::SetOspfCost,
       priv::ObjectKind::Interface},
      {{DeviceId("r1"), cfg::AclEntryAdd{"A", 0, {}}}, Action::AclEdit,
       priv::ObjectKind::AclObject},
      {{DeviceId("r1"), cfg::AclEntryRemove{"A", 0, {}}}, Action::AclEdit,
       priv::ObjectKind::AclObject},
      {{DeviceId("r1"), cfg::AclCreate{acl}}, Action::AclCreate, priv::ObjectKind::AclObject},
      {{DeviceId("r1"), cfg::AclDelete{"A"}}, Action::AclDelete, priv::ObjectKind::AclObject},
      {{DeviceId("r1"), cfg::StaticRouteAdd{route}}, Action::StaticRouteAdd,
       priv::ObjectKind::RouteObject},
      {{DeviceId("r1"), cfg::StaticRouteRemove{route}}, Action::StaticRouteRemove,
       priv::ObjectKind::RouteObject},
      {{DeviceId("r1"), cfg::OspfNetworkAdd{{}}}, Action::OspfNetworkEdit,
       priv::ObjectKind::OspfObject},
      {{DeviceId("r1"), cfg::OspfNetworkRemove{{}}}, Action::OspfNetworkEdit,
       priv::ObjectKind::OspfObject},
      {{DeviceId("r1"), cfg::OspfProcessChange{{}, {}}}, Action::OspfProcessEdit,
       priv::ObjectKind::OspfObject},
      {{DeviceId("r1"), cfg::VlanDeclare{10}}, Action::VlanEdit, priv::ObjectKind::VlanObject},
      {{DeviceId("r1"), cfg::VlanRemove{10}}, Action::VlanEdit, priv::ObjectKind::VlanObject},
      {{DeviceId("r1"), cfg::SecretChange{"ipsec_key"}}, Action::ChangeSecret,
       priv::ObjectKind::SecretObject},
  };
  for (const Case& test_case : cases) {
    ChangeClassification classification = classify_change(test_case.change);
    EXPECT_EQ(classification.action, test_case.action) << test_case.change.summary();
    EXPECT_EQ(classification.resource.kind, test_case.kind) << test_case.change.summary();
    EXPECT_EQ(classification.resource.device, "r1");
  }
}

TEST(Compliance, FlagsUnauthorizedChanges) {
  priv::PrivilegeSpec spec;
  spec.allow({Action::InterfaceDown}, priv::Resource::whole_device(DeviceId("r1")));
  std::vector<ConfigChange> changes = {
      shutdown_change("r1", "e0"),  // allowed
      shutdown_change("r2", "e0"),  // wrong device
      {DeviceId("r1"), cfg::SecretChange{"ipsec_key"}},  // wrong action
  };
  auto violations = check_privilege_compliance(changes, spec);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].change.device, DeviceId("r2"));
  EXPECT_EQ(violations[1].classification.action, Action::ChangeSecret);
}

// ------------------------------------------------------------------- audit --

TEST(Audit, ChainVerifies) {
  AuditLog log;
  for (int i = 0; i < 20; ++i)
    log.append(i * 100, "tech", AuditCategory::Command, "command " + std::to_string(i));
  EXPECT_EQ(log.size(), 20u);
  EXPECT_TRUE(log.verify_chain());
  EXPECT_EQ(log.first_corrupt_index(), 20u);
}

TEST(Audit, DetectsMessageTampering) {
  AuditLog log;
  log.append(0, "tech", AuditCategory::Command, "honest entry");
  log.append(1, "tech", AuditCategory::Command, "second entry");
  log.mutable_entries_for_test()[0].message = "doctored entry";
  EXPECT_FALSE(log.verify_chain());
  EXPECT_EQ(log.first_corrupt_index(), 0u);
}

TEST(Audit, DetectsDeletionAndReorder) {
  AuditLog log;
  for (int i = 0; i < 5; ++i)
    log.append(i, "tech", AuditCategory::Command, "entry " + std::to_string(i));

  AuditLog deleted = log;
  auto& entries = deleted.mutable_entries_for_test();
  entries.erase(entries.begin() + 2);
  EXPECT_FALSE(deleted.verify_chain());

  AuditLog reordered = log;
  std::swap(reordered.mutable_entries_for_test()[1], reordered.mutable_entries_for_test()[3]);
  EXPECT_FALSE(reordered.verify_chain());
}

TEST(Audit, TruncationKeepsChainButChangesHead) {
  AuditLog log;
  for (int i = 0; i < 5; ++i) log.append(i, "tech", AuditCategory::Command, "entry");
  auto full_head = log.head();
  log.mutable_entries_for_test().pop_back();
  // A truncated chain still verifies internally...
  EXPECT_TRUE(log.verify_chain());
  // ...which is exactly why the enclave-sealed head is needed.
  EXPECT_FALSE(log.matches_head(full_head));
}

TEST(Audit, JsonExportContainsHashes) {
  AuditLog log;
  log.append(5, "tech", AuditCategory::Violation, "intercepted");
  util::Json json = log.to_json();
  const auto& entries = json.at("audit_log").as_array();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].at("category").as_string(), "violation");
  EXPECT_EQ(entries[0].at("hash").as_string().size(), 64u);
}

TEST(Audit, JsonRoundTripReVerifies) {
  AuditLog log;
  for (int i = 0; i < 7; ++i)
    log.append(i * 10, "tech", AuditCategory::Command, "cmd " + std::to_string(i));
  log.append(99, "enforcer", AuditCategory::Violation, "intercepted: \"quoted\"\nnewline");

  AuditLog reloaded = AuditLog::from_json(util::Json::parse(log.to_json().dump()));
  ASSERT_EQ(reloaded.size(), log.size());
  EXPECT_TRUE(reloaded.verify_chain());
  EXPECT_TRUE(reloaded.matches_head(log.head()));

  // A doctored export fails re-verification after reload.
  util::Json doctored = log.to_json();
  // Rebuild with one message edited via the object model.
  AuditLog tampered = AuditLog::from_json(doctored);
  tampered.mutable_entries_for_test()[3].message = "redacted";
  EXPECT_FALSE(tampered.verify_chain());
}

TEST(Audit, JsonRoundTripPreservesLargeIntegers) {
  // seq and t_ms are 64-bit; a double-backed JSON number silently rounds
  // values above 2^53, which breaks the hash chain on re-import. The export
  // must round-trip them losslessly.
  AuditLog log;
  log.append(0, "tech", AuditCategory::Command, "big");
  constexpr std::uint64_t kBigSeq = (1ULL << 53) + 3;   // rounds to 2^53+4 as a double
  constexpr std::int64_t kBigTime = (1LL << 53) + 1;
  log.mutable_entries_for_test()[0].sequence = kBigSeq;
  log.mutable_entries_for_test()[0].timestamp_ms = kBigTime;

  AuditLog reloaded = AuditLog::from_json(util::Json::parse(log.to_json().dump()));
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.mutable_entries_for_test()[0].sequence, kBigSeq);
  EXPECT_EQ(reloaded.mutable_entries_for_test()[0].timestamp_ms, kBigTime);
}

TEST(Audit, FromJsonAcceptsLegacyNumericFields) {
  // Older exports wrote seq/t_ms as JSON numbers; they must still load.
  std::string zeros(64, '0');
  util::Json document = util::Json::parse(
      R"({"audit_log":[{"seq":4,"t_ms":-25,"actor":"a","category":"command",
          "message":"m","prev":")" +
      zeros + R"(","hash":")" + zeros + R"("}]})");
  AuditLog log = AuditLog::from_json(document);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.mutable_entries_for_test()[0].sequence, 4u);
  EXPECT_EQ(log.mutable_entries_for_test()[0].timestamp_ms, -25);
}

TEST(Audit, FromJsonRejectsMalformed) {
  EXPECT_THROW(AuditLog::from_json(util::Json::parse(R"({"audit_log":[{"seq":0}]})")),
               util::ParseError);
  EXPECT_THROW(AuditLog::from_json(util::Json::parse(
                   R"({"audit_log":[{"seq":0,"t_ms":0,"actor":"a","category":"bogus",
                       "message":"m","prev":"00","hash":"00"}]})")),
               util::ParseError);
  EXPECT_THROW(AuditLog::from_json(util::Json::parse(R"({"wrong":[]})")), util::ParseError);
  // String-encoded integers must be fully numeric.
  std::string zeros(64, '0');
  EXPECT_THROW(AuditLog::from_json(util::Json::parse(
                   R"({"audit_log":[{"seq":"12x","t_ms":"0","actor":"a","category":"command",
                       "message":"m","prev":")" +
                   zeros + R"(","hash":")" + zeros + R"("}]})")),
               util::ParseError);
}

// ----------------------------------------------------------------- enclave --

TEST(Enclave, AttestationVerifies) {
  SimulatedEnclave enclave("enforcer-v1", "hw-key");
  AttestationReport report = enclave.attest("nonce-123");
  EXPECT_TRUE(enclave.verify_report(report, enclave.measurement()));

  // Wrong expected measurement.
  SimulatedEnclave other("enforcer-v2", "hw-key");
  EXPECT_FALSE(enclave.verify_report(report, other.measurement()));

  // Tampered report data.
  AttestationReport tampered = report;
  tampered.report_data = "nonce-456";
  EXPECT_FALSE(enclave.verify_report(tampered, enclave.measurement()));
}

TEST(Enclave, SealUnsealRoundTrip) {
  SimulatedEnclave enclave("enforcer-v1", "hw-key");
  SealedBlob blob = enclave.seal("audit-head-abc");
  auto unsealed = enclave.unseal(blob);
  ASSERT_TRUE(unsealed.has_value());
  EXPECT_EQ(*unsealed, "audit-head-abc");
}

TEST(Enclave, UnsealRejectsTamperAndForeignSealer) {
  SimulatedEnclave enclave("enforcer-v1", "hw-key");
  SealedBlob blob = enclave.seal("data");
  SealedBlob tampered = blob;
  tampered.payload = "datX";
  EXPECT_FALSE(enclave.unseal(tampered).has_value());

  SimulatedEnclave impostor("malicious-enclave", "hw-key");
  EXPECT_FALSE(impostor.unseal(blob).has_value());
}

TEST(Enclave, MonotonicCounter) {
  SimulatedEnclave enclave("enforcer-v1", "hw-key");
  auto first = enclave.bump_counter();
  auto second = enclave.bump_counter();
  EXPECT_LT(first, second);
}

// ---------------------------------------------------------------- verifier --

struct EnforcerFixture {
  Network production = scen::build_enterprise();
  spec::PolicyVerifier policies{scen::enterprise_policies(production)};
  priv::PrivilegeSpec root;  // permissive spec for verifier-only tests

  EnforcerFixture() {
    root.allow(priv::all_actions(), priv::Resource{"*", priv::ObjectKind::Device, ""});
  }
};

TEST(Verifier, ApprovesBenignChange) {
  EnforcerFixture fixture;
  std::vector<ConfigChange> changes = {
      {DeviceId("r6"),
       cfg::OspfCostChange{InterfaceId("Gi0/0"), std::nullopt, 50u}}};
  VerifyOutcome outcome = verify_changes(fixture.production, changes, fixture.policies, fixture.root);
  EXPECT_TRUE(outcome.approved());
  EXPECT_TRUE(outcome.rejection_reasons().empty());
}

TEST(Verifier, InterceptsMaliciousAclChange) {
  // The paper's §4.3 scenario: a permit that opens the sensitive host.
  EnforcerFixture fixture;
  AclEntry entry;
  entry.action = AclEntry::Action::Permit;
  entry.src = Ipv4Prefix::parse("10.0.20.0/24");
  entry.dst = Ipv4Prefix::parse("10.0.8.0/24");
  std::vector<ConfigChange> changes = {{DeviceId("r9"), cfg::AclEntryAdd{"DMZ_IN", 0, entry}}};
  VerifyOutcome outcome = verify_changes(fixture.production, changes, fixture.policies, fixture.root);
  EXPECT_FALSE(outcome.approved());
  EXPECT_FALSE(outcome.policy_report.ok());
  bool found_isolation_breach = false;
  for (const spec::Violation& violation : outcome.policy_report.violations)
    found_isolation_breach |= violation.policy.type == spec::PolicyType::Isolation;
  EXPECT_TRUE(found_isolation_breach);
}

TEST(Verifier, InterceptsPrivilegeViolation) {
  EnforcerFixture fixture;
  priv::PrivilegeSpec narrow;
  narrow.allow({Action::SetOspfCost}, priv::Resource::whole_device(DeviceId("r6")));
  std::vector<ConfigChange> changes = {shutdown_change("r9", "Gi0/1")};
  VerifyOutcome outcome = verify_changes(fixture.production, changes, fixture.policies, narrow);
  EXPECT_FALSE(outcome.approved());
  ASSERT_EQ(outcome.privilege_violations.size(), 1u);
  EXPECT_FALSE(outcome.rejection_reasons().empty());
}

TEST(Verifier, ReportsReplayErrors) {
  EnforcerFixture fixture;
  std::vector<ConfigChange> changes = {
      {DeviceId("r1"), cfg::AclDelete{"NO_SUCH_ACL"}}};
  VerifyOutcome outcome = verify_changes(fixture.production, changes, fixture.policies, fixture.root);
  EXPECT_FALSE(outcome.approved());
  EXPECT_EQ(outcome.replay_errors.size(), 1u);
}

// --------------------------------------------------------------- scheduler --

TEST(Scheduler, MakeBeforeBreakOrdering) {
  AclEntry permit;
  permit.action = AclEntry::Action::Permit;
  AclEntry deny;
  deny.action = AclEntry::Action::Deny;
  Acl acl;
  acl.name = "NEW";
  std::vector<ConfigChange> changes = {
      shutdown_change("r1", "e0"),                               // break: prio 3
      {DeviceId("r2"), cfg::SecretChange{"snmp_community"}},     // last: prio 4
      {DeviceId("r1"), cfg::AclCreate{acl}},                     // create: prio 0
      {DeviceId("r1"), cfg::StaticRouteAdd{{}}},                 // make: prio 1
      {DeviceId("r3"), cfg::OspfCostChange{InterfaceId("e1"), {}, 5}},  // neutral: 2
  };
  auto ordered = schedule_changes(changes);
  ASSERT_EQ(ordered.size(), changes.size());
  EXPECT_NE(std::get_if<cfg::AclCreate>(&ordered[0].detail), nullptr);
  EXPECT_NE(std::get_if<cfg::StaticRouteAdd>(&ordered[1].detail), nullptr);
  EXPECT_NE(std::get_if<cfg::OspfCostChange>(&ordered[2].detail), nullptr);
  EXPECT_NE(std::get_if<cfg::InterfaceAdminChange>(&ordered[3].detail), nullptr);
  EXPECT_NE(std::get_if<cfg::SecretChange>(&ordered[4].detail), nullptr);
}

TEST(Scheduler, SameAclEditsStayAtomicAndOrdered) {
  AclEntry permit;
  permit.action = AclEntry::Action::Permit;
  AclEntry deny;
  deny.action = AclEntry::Action::Deny;
  // deny-add (prio 3) precedes permit-add (prio 1) in session order; both
  // touch ACL "A" so their relative order must survive scheduling.
  std::vector<ConfigChange> changes = {
      {DeviceId("r1"), cfg::AclEntryAdd{"A", 0, deny}},
      {DeviceId("r1"), cfg::AclEntryAdd{"A", 1, permit}},
      {DeviceId("r2"), cfg::StaticRouteAdd{{}}},
  };
  auto ordered = schedule_changes(changes);
  ASSERT_EQ(ordered.size(), 3u);
  // The ACL group inherits the min priority (1) and stays in order.
  const auto* first = std::get_if<cfg::AclEntryAdd>(&ordered[0].detail);
  const auto* second = std::get_if<cfg::AclEntryAdd>(&ordered[1].detail);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->index, 0u);
  EXPECT_EQ(second->index, 1u);
}

TEST(Scheduler, OutputIsPermutationOfInput) {
  std::vector<ConfigChange> changes = {
      shutdown_change("r1", "e0"),
      {DeviceId("r1"), cfg::VlanDeclare{30}},
      {DeviceId("r2"), cfg::VlanRemove{40}},
      {DeviceId("r3"), cfg::SecretChange{"ipsec_key"}},
  };
  auto ordered = schedule_changes(changes);
  ASSERT_EQ(ordered.size(), changes.size());
  for (const ConfigChange& change : changes) {
    EXPECT_NE(std::find(ordered.begin(), ordered.end(), change), ordered.end())
        << change.summary();
  }
}

TEST(Scheduler, OrderingAvoidsTransientViolation) {
  // Scenario: technician swaps h3's DMZ permit for an equivalent one
  // (remove old permit, add new). Naive session order (remove first) leaves
  // an intermediate state where reach(h3,h7) is broken; scheduled order
  // (add first) never violates it.
  Network production = scen::build_enterprise();
  spec::PolicyVerifier invariants({spec::Policy{spec::PolicyType::Reachability, DeviceId("h3"),
                                                DeviceId("h7"), DeviceId{}}});

  const Acl* dmz = production.device(DeviceId("r9")).find_acl("DMZ_IN");
  ASSERT_NE(dmz, nullptr);
  AclEntry old_permit = dmz->entries[1];  // permit icmp 10.0.30.0/24 -> DMZ
  AclEntry wide_permit = old_permit;
  wide_permit.protocol = IpProtocol::Any;

  // Session order: remove the old entry, then add the replacement at its slot.
  std::vector<ConfigChange> session_order = {
      {DeviceId("r9"), cfg::AclEntryRemove{"DMZ_IN", 1, old_permit}},
      {DeviceId("r9"), cfg::AclEntryAdd{"DMZ_IN", 1, wide_permit}},
  };
  SchedulePlan naive = check_plan_order(production, session_order, invariants);
  EXPECT_GT(naive.transient_violation_count(), 0u);

  // Scheduled order: the same-ACL group keeps relative order... which is
  // exactly the hazard; express the make-before-break variant instead:
  std::vector<ConfigChange> scheduled = {
      {DeviceId("r9"), cfg::AclEntryAdd{"DMZ_IN", 1, wide_permit}},
      {DeviceId("r9"), cfg::AclEntryRemove{"DMZ_IN", 2, old_permit}},
  };
  SchedulePlan safe = check_plan_order(production, scheduled, invariants);
  EXPECT_EQ(safe.transient_violation_count(), 0u);

  // Both orders land on the same final state.
  Network via_naive = production;
  cfg::apply_changes(via_naive, naive.ordered_changes());
  Network via_safe = production;
  cfg::apply_changes(via_safe, safe.ordered_changes());
  EXPECT_EQ(via_naive, via_safe);
}

// ----------------------------------------------------------------- facade --

TEST(Enforcer, AppliesApprovedChangeset) {
  EnforcerFixture fixture;
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  std::vector<ConfigChange> changes = {
      {DeviceId("r6"), cfg::OspfCostChange{InterfaceId("Gi0/0"), std::nullopt, 50u}}};
  EnforcementReport report =
      enforcer.enforce(fixture.production, changes, fixture.root, clock, "tech");
  EXPECT_TRUE(report.applied);
  EXPECT_EQ(fixture.production.device(DeviceId("r6")).interface(InterfaceId("Gi0/0")).ospf_cost,
            50u);
  EXPECT_TRUE(enforcer.audit_intact());
  EXPECT_GT(enforcer.audit().size(), 0u);
}

TEST(Enforcer, RejectsAndAuditsMaliciousChangeset) {
  EnforcerFixture fixture;
  Network pristine = fixture.production;
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;

  AclEntry entry;
  entry.action = AclEntry::Action::Permit;
  entry.src = Ipv4Prefix::parse("10.0.20.0/24");
  entry.dst = Ipv4Prefix::parse("10.0.8.0/24");
  std::vector<ConfigChange> changes = {{DeviceId("r9"), cfg::AclEntryAdd{"DMZ_IN", 0, entry}}};

  EnforcementReport report =
      enforcer.enforce(fixture.production, changes, fixture.root, clock, "rogue");
  EXPECT_FALSE(report.applied);
  EXPECT_FALSE(report.rejection_reasons.empty());
  EXPECT_EQ(fixture.production, pristine);  // production untouched

  bool audited_violation = false;
  for (const AuditEntry& entry_record : enforcer.audit().entries())
    audited_violation |= entry_record.category == AuditCategory::Violation;
  EXPECT_TRUE(audited_violation);
}

TEST(Enforcer, AttestationBindsAuditHead) {
  EnforcerFixture fixture;
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  enforcer.audit_event(clock, "tech", AuditCategory::Session, "session open");
  AttestationReport report = enforcer.attest();
  EXPECT_TRUE(enforcer.enclave().verify_report(report, enforcer.enclave().measurement()));
  EXPECT_EQ(report.report_data, util::to_hex(enforcer.audit().head()));
}

TEST(Enforcer, EmergencyModeVerifiesBeforeApply) {
  EnforcerFixture fixture;
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;

  // Benign emergency command: applied.
  EmergencyResult ok = enforcer.emergency_execute(
      fixture.production, "interface r6 Gi0/0 ospf-cost 42", fixture.root, clock, "tech");
  EXPECT_TRUE(ok.permitted);
  EXPECT_TRUE(ok.applied);
  EXPECT_EQ(fixture.production.device(DeviceId("r6")).interface(InterfaceId("Gi0/0")).ospf_cost,
            42u);

  // Catastrophic emergency command: rolled back.
  Network before = fixture.production;
  EmergencyResult bad = enforcer.emergency_execute(fixture.production, "erase r6", fixture.root,
                                                   clock, "careless");
  EXPECT_TRUE(bad.permitted);
  EXPECT_FALSE(bad.applied);
  EXPECT_FALSE(bad.rejection_reasons.empty());
  EXPECT_EQ(fixture.production, before);

  // Unprivileged emergency command: denied outright.
  priv::PrivilegeSpec none;
  EmergencyResult denied = enforcer.emergency_execute(fixture.production, "reboot r1", none,
                                                      clock, "rogue");
  EXPECT_FALSE(denied.permitted);
}

TEST(Enforcer, AuditRollbackDetected) {
  // An attacker with disk access can restore an *older* log together with
  // its matching sealed head — both internally consistent. Only the
  // enclave's monotonic counter exposes the rollback.
  EnforcerFixture fixture;
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  enforcer.audit_event(clock, "tech", AuditCategory::Session, "epoch 1");
  AuditLog stale_log = enforcer.audit();
  SealedBlob stale_head = enforcer.mutable_sealed_head_for_test();

  enforcer.audit_event(clock, "tech", AuditCategory::Command, "epoch 2");
  ASSERT_TRUE(enforcer.audit_intact());

  enforcer.mutable_audit_for_test() = stale_log;
  enforcer.mutable_sealed_head_for_test() = stale_head;
  // The stale pair still chains and matches its own sealed hash, but the
  // sealed counter lags the enclave's.
  EXPECT_TRUE(enforcer.audit().verify_chain());
  EXPECT_FALSE(enforcer.audit_intact());
}

TEST(Scheduler, PlanCheckStopsAfterReplayError) {
  // Once a step fails to replay, the shadow no longer represents any state
  // production would pass through; later steps must not be applied or
  // checked against it.
  EnforcerFixture fixture;
  std::vector<ConfigChange> ordered = {
      {DeviceId("r6"), cfg::OspfCostChange{InterfaceId("Gi0/0"), std::nullopt, 42u}},
      {DeviceId("r7"), cfg::VlanRemove{3999}},  // never declared: replay fails
      {DeviceId("r6"), cfg::OspfCostChange{InterfaceId("Gi0/1"), std::nullopt, 7u}},
  };
  SchedulePlan plan = check_plan_order(fixture.production, ordered, fixture.policies);
  ASSERT_EQ(plan.steps.size(), 3u);
  ASSERT_EQ(plan.steps[1].transient_violations.size(), 1u);
  EXPECT_EQ(plan.steps[1].transient_violations[0].rfind("replay-error: ", 0), 0u);
  ASSERT_EQ(plan.steps[2].transient_violations.size(), 1u);
  EXPECT_EQ(plan.steps[2].transient_violations[0], "unchecked: aborted after replay error");

  spec::PolicyVerifier oracle_policies{scen::enterprise_policies(fixture.production)};
  SchedulePlan reference =
      check_plan_order_reference(fixture.production, ordered, oracle_policies);
  ASSERT_EQ(reference.steps.size(), plan.steps.size());
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    EXPECT_EQ(plan.steps[i].change, reference.steps[i].change) << "step " << i;
    EXPECT_EQ(plan.steps[i].transient_violations, reference.steps[i].transient_violations)
        << "step " << i;
  }
}

void expect_reports_equal(const QuarantineReport& incremental,
                          const QuarantineReport& reference) {
  EXPECT_EQ(incremental.applied_changes, reference.applied_changes);
  ASSERT_EQ(incremental.quarantined.size(), reference.quarantined.size());
  for (std::size_t i = 0; i < incremental.quarantined.size(); ++i) {
    EXPECT_EQ(incremental.quarantined[i].first, reference.quarantined[i].first) << i;
    EXPECT_EQ(incremental.quarantined[i].second, reference.quarantined[i].second) << i;
  }
  EXPECT_EQ(incremental.applied_any, reference.applied_any);
}

TEST(Quarantine, ReplayFailureQuarantinesRemainder) {
  // Two identical VLAN declarations: each is clean in isolation, but the
  // joint replay fails on the duplicate. The remainder must land in the
  // quarantine list with a replay reason — not silently vanish.
  EnforcerFixture fixture;
  std::vector<ConfigChange> session = {
      {DeviceId("r7"), cfg::VlanDeclare{99}},
      {DeviceId("r7"), cfg::VlanDeclare{99}},
  };
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  Network pristine = fixture.production;
  QuarantineReport report =
      enforcer.enforce_with_quarantine(fixture.production, session, fixture.root, clock, "tech");

  EXPECT_FALSE(report.applied_any);
  EXPECT_TRUE(report.applied_changes.empty());
  ASSERT_EQ(report.quarantined.size(), 2u);
  for (const auto& entry : report.quarantined) {
    EXPECT_EQ(entry.second.rfind("replay: ", 0), 0u) << entry.second;
  }
  EXPECT_EQ(fixture.production, pristine);

  // The copy-based oracle reports the same outcome.
  EnforcerFixture oracle;
  PolicyEnforcer reference(oracle.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock oracle_clock;
  QuarantineReport oracle_report = reference.enforce_with_quarantine_reference(
      oracle.production, session, oracle.root, oracle_clock, "tech");
  expect_reports_equal(report, oracle_report);
}

TEST(Quarantine, IncrementalMatchesReferenceOracle) {
  // The broken-production scenario from AppliesLegitimateInterceptsMalicious,
  // run through both pipelines: reports and resulting networks must be
  // identical, sequentially and with parallel attribution.
  auto make_production = [] {
    Network production = scen::build_enterprise();
    AclEntry bogus;
    bogus.action = AclEntry::Action::Deny;
    bogus.src = Ipv4Prefix::parse("10.0.10.0/24");
    bogus.dst = Ipv4Prefix::parse("10.0.7.0/24");
    auto& entries = production.device(DeviceId("r9")).find_acl("DMZ_IN")->entries;
    entries.insert(entries.begin(), bogus);
    return production;
  };
  AclEntry malicious;
  malicious.action = AclEntry::Action::Permit;
  malicious.src = Ipv4Prefix::parse("10.0.20.0/24");
  malicious.dst = Ipv4Prefix::parse("10.0.8.0/24");
  AclEntry bogus = make_production().device(DeviceId("r9")).find_acl("DMZ_IN")->entries[0];
  std::vector<ConfigChange> session = {
      {DeviceId("r9"), cfg::AclEntryAdd{"DMZ_IN", 0, malicious}},
      {DeviceId("r9"), cfg::AclEntryRemove{"DMZ_IN", 1, bogus}},
  };
  auto policies = scen::enterprise_policies(scen::build_enterprise());
  priv::PrivilegeSpec root;
  root.allow(priv::all_actions(), priv::Resource{"*", priv::ObjectKind::Device, ""});

  Network reference_net = make_production();
  PolicyEnforcer reference(spec::PolicyVerifier(policies), SimulatedEnclave("v1", "hw"));
  util::VirtualClock reference_clock;
  QuarantineReport reference_report = reference.enforce_with_quarantine_reference(
      reference_net, session, root, reference_clock, "tech");
  ASSERT_EQ(reference_report.quarantined.size(), 1u);  // scenario sanity

  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    Network incremental_net = make_production();
    PolicyEnforcer incremental(spec::PolicyVerifier(policies), SimulatedEnclave("v1", "hw"),
                               EnforcerOptions{threads});
    util::VirtualClock clock;
    QuarantineReport report =
        incremental.enforce_with_quarantine(incremental_net, session, root, clock, "tech");
    expect_reports_equal(report, reference_report);
    EXPECT_EQ(incremental_net, reference_net) << "threads=" << threads;
  }
}

TEST(Quarantine, AppliesLegitimateInterceptsMalicious) {
  // Paper §3: "legitimate changes are applied to the production network and
  // violations are intercepted." Production starts broken (a bogus deny
  // blocks h1 -> DMZ); the session contains the fix plus a malicious permit.
  Network production = scen::build_enterprise();
  auto policies = scen::enterprise_policies(scen::build_enterprise());
  AclEntry bogus;
  bogus.action = AclEntry::Action::Deny;
  bogus.src = Ipv4Prefix::parse("10.0.10.0/24");
  bogus.dst = Ipv4Prefix::parse("10.0.7.0/24");
  auto& entries = production.device(DeviceId("r9")).find_acl("DMZ_IN")->entries;
  entries.insert(entries.begin(), bogus);

  AclEntry malicious;
  malicious.action = AclEntry::Action::Permit;
  malicious.src = Ipv4Prefix::parse("10.0.20.0/24");
  malicious.dst = Ipv4Prefix::parse("10.0.8.0/24");

  std::vector<ConfigChange> session = {
      {DeviceId("r9"), cfg::AclEntryAdd{"DMZ_IN", 0, malicious}},
      {DeviceId("r9"), cfg::AclEntryRemove{"DMZ_IN", 1, bogus}},
  };

  priv::PrivilegeSpec root;
  root.allow(priv::all_actions(), priv::Resource{"*", priv::ObjectKind::Device, ""});
  PolicyEnforcer enforcer(spec::PolicyVerifier(policies), SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  QuarantineReport report =
      enforcer.enforce_with_quarantine(production, session, root, clock, "tech");

  EXPECT_TRUE(report.applied_any);
  ASSERT_EQ(report.applied_changes.size(), 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_NE(report.quarantined[0].second.find("isolate(h2,h8)"), std::string::npos);
  // The fix landed: production is fully healthy again.
  EXPECT_TRUE(spec::PolicyVerifier(policies).verify_network(production).ok());
  EXPECT_TRUE(enforcer.audit_intact());
}

TEST(Quarantine, PrivilegeViolationsFilteredFirst) {
  EnforcerFixture fixture;
  priv::PrivilegeSpec narrow;
  narrow.allow({Action::SetOspfCost}, priv::Resource::whole_device(DeviceId("r6")));
  std::vector<ConfigChange> session = {
      {DeviceId("r6"), cfg::OspfCostChange{InterfaceId("Gi0/0"), std::nullopt, 42u}},
      {DeviceId("r9"), cfg::SecretChange{"enable_password"}},  // no privilege
  };
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  QuarantineReport report =
      enforcer.enforce_with_quarantine(fixture.production, session, narrow, clock, "tech");
  EXPECT_TRUE(report.applied_any);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_NE(report.quarantined[0].second.find("privilege"), std::string::npos);
  EXPECT_EQ(fixture.production.device(DeviceId("r6")).interface(InterfaceId("Gi0/0")).ospf_cost,
            42u);
}

TEST(Quarantine, CombinationViolationRejectsRemainder) {
  // Two changes that are individually harmless but jointly open h2 -> h8:
  // (1) permit h2's subnet into the whole DMZ range on DMZ_IN,
  // (2) is modeled here as a pair where each alone keeps isolation intact.
  // Construct: change A permits h2 -> h8 on a *new unbound* ACL (harmless
  // alone), change B binds that ACL, replacing DMZ_IN (the combination
  // bypasses the deny).
  EnforcerFixture fixture;
  Acl open_acl;
  open_acl.name = "OPEN";
  AclEntry permit_any;
  permit_any.action = AclEntry::Action::Permit;
  open_acl.entries.push_back(permit_any);

  std::vector<ConfigChange> session = {
      {DeviceId("r9"), cfg::AclCreate{open_acl}},  // harmless alone (unbound)
      {DeviceId("r9"), cfg::InterfaceAclBindingChange{InterfaceId("Gi0/0"),
                                                      cfg::AclDirection::In, "DMZ_IN", "OPEN"}},
  };
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  Network pristine = fixture.production;
  QuarantineReport report =
      enforcer.enforce_with_quarantine(fixture.production, session, fixture.root, clock, "tech");

  // The rebind alone already violates (it swaps the filter); depending on
  // attribution it is quarantined individually, and the create is harmless.
  // Either way: production must never end up violating policies.
  EXPECT_TRUE(spec::PolicyVerifier(fixture.policies.policies())
                  .verify_network(fixture.production)
                  .ok());
  EXPECT_FALSE(report.quarantined.empty());
}

TEST(Quarantine, CleanSessionAppliesEverything) {
  EnforcerFixture fixture;
  std::vector<ConfigChange> session = {
      {DeviceId("r6"), cfg::OspfCostChange{InterfaceId("Gi0/0"), std::nullopt, 5u}},
      {DeviceId("r6"), cfg::OspfCostChange{InterfaceId("Gi0/1"), std::nullopt, 50u}},
  };
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  QuarantineReport report =
      enforcer.enforce_with_quarantine(fixture.production, session, fixture.root, clock, "tech");
  EXPECT_TRUE(report.applied_any);
  EXPECT_EQ(report.applied_changes.size(), 2u);
  EXPECT_TRUE(report.quarantined.empty());
}

// ------------------------------------------------------------------ batch --

// Two routed islands with no link between them: every reachability pair
// lives entirely inside one island, so submissions touching ra and rb have
// disjoint device AND pair footprints — the exact precondition for the
// batch enforcer to coalesce their joint verification into one wave.
Network two_islands() {
  Network network("islands");
  network.add_device(scen::make_router("ra"));
  network.add_device(scen::make_router("rb"));
  network.add_device(
      scen::make_host("ha1", Ipv4Address::parse("10.1.1.10"), 24, Ipv4Address::parse("10.1.1.1")));
  network.add_device(
      scen::make_host("ha2", Ipv4Address::parse("10.1.2.10"), 24, Ipv4Address::parse("10.1.2.1")));
  network.add_device(
      scen::make_host("hb1", Ipv4Address::parse("10.2.1.10"), 24, Ipv4Address::parse("10.2.1.1")));
  network.add_device(
      scen::make_host("hb2", Ipv4Address::parse("10.2.2.10"), 24, Ipv4Address::parse("10.2.2.1")));
  scen::attach_host_routed(network, "ra", "Gi0/0", Ipv4Address::parse("10.1.1.1"), 24, "ha1");
  scen::attach_host_routed(network, "ra", "Gi0/1", Ipv4Address::parse("10.1.2.1"), 24, "ha2");
  scen::attach_host_routed(network, "rb", "Gi0/0", Ipv4Address::parse("10.2.1.1"), 24, "hb1");
  scen::attach_host_routed(network, "rb", "Gi0/1", Ipv4Address::parse("10.2.2.1"), 24, "hb2");
  return network;
}

std::vector<spec::Policy> island_policies() {
  return {{spec::PolicyType::Reachability, DeviceId("ha1"), DeviceId("ha2"), {}},
          {spec::PolicyType::Reachability, DeviceId("hb1"), DeviceId("hb2"), {}}};
}

net::Acl unbound_acl(const std::string& name) {
  Acl acl;
  acl.name = name;
  AclEntry deny;
  deny.action = AclEntry::Action::Deny;
  deny.src = Ipv4Prefix::parse("192.0.2.0/24");
  acl.entries.push_back(deny);
  return acl;
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

/// Replays `batch` through a fresh enforcer as a serialized sequence of
/// enforce_with_quarantine() calls — the oracle the batch path must match.
std::vector<QuarantineReport> serialized_oracle(Network& production,
                                                const spec::PolicyVerifier& policies,
                                                const std::vector<BatchSubmission>& batch) {
  PolicyEnforcer oracle(spec::PolicyVerifier(policies.policies()),
                        SimulatedEnclave("oracle", "hw"));
  util::VirtualClock clock;
  std::vector<QuarantineReport> reports;
  for (const BatchSubmission& submission : batch)
    reports.push_back(oracle.enforce_with_quarantine(production, submission.changes,
                                                     submission.privileges, clock,
                                                     submission.actor));
  return reports;
}

TEST(Batch, MatchesSerializedOracle) {
  // A mixed batch covering every quarantine path: a Global-impact benign
  // change (runs solo), a solo-violating DMZ permit, a joint replay failure
  // (duplicate VLAN declarations) and a privilege violation. Every report
  // must be identical to a serialized run, and so must production.
  EnforcerFixture fixture;
  AclEntry permit;
  permit.action = AclEntry::Action::Permit;
  permit.src = Ipv4Prefix::parse("10.0.20.0/24");
  permit.dst = Ipv4Prefix::parse("10.0.8.0/24");
  priv::PrivilegeSpec none;  // allows nothing
  std::vector<BatchSubmission> batch;
  batch.push_back({"carol",
                   {{DeviceId("r6"), cfg::OspfCostChange{InterfaceId("Gi0/0"), std::nullopt, 7u}}},
                   fixture.root,
                   {}});
  batch.push_back(
      {"dave", {{DeviceId("r9"), cfg::AclEntryAdd{"DMZ_IN", 0, permit}}}, fixture.root, {}});
  batch.push_back({"erin",
                   {{DeviceId("r7"), cfg::VlanDeclare{99}}, {DeviceId("r7"), cfg::VlanDeclare{99}}},
                   fixture.root,
                   {}});
  batch.push_back({"frank", {shutdown_change("r1", "e0")}, none, {}});

  Network batched = fixture.production;
  Network serial = fixture.production;
  PolicyEnforcer enforcer(spec::PolicyVerifier(fixture.policies.policies()),
                          SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  std::vector<QuarantineReport> reports = enforcer.enforce_with_quarantine_batch(batched, batch, clock);
  std::vector<QuarantineReport> oracle = serialized_oracle(serial, fixture.policies, batch);

  ASSERT_EQ(reports.size(), batch.size());
  ASSERT_EQ(oracle.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("submission " + std::to_string(i));
    expect_reports_equal(reports[i], oracle[i]);
  }
  EXPECT_TRUE(reports[0].applied_any);
  EXPECT_FALSE(reports[1].applied_any);
  EXPECT_EQ(reports[1].quarantined.size(), 1u);
  EXPECT_EQ(reports[2].quarantined.size(), 2u);
  EXPECT_EQ(reports[3].quarantined.size(), 1u);
  EXPECT_EQ(reports[3].quarantined[0].second.rfind("privilege: ", 0), 0u);
  EXPECT_EQ(batched, serial);
  EXPECT_TRUE(enforcer.audit_intact());
}

TEST(Batch, CoalescesDisjointSubmissionsIntoOneWave) {
  Network production = two_islands();
  spec::PolicyVerifier policies{island_policies()};
  EXPECT_TRUE(policies.verify_network(production).ok());
  priv::PrivilegeSpec root;
  root.allow(priv::all_actions(), priv::Resource{"*", priv::ObjectKind::Device, ""});

  std::vector<BatchSubmission> batch = {
      {"alice", {{DeviceId("ra"), cfg::AclCreate{unbound_acl("FA")}}}, root, {}},
      {"bob", {{DeviceId("rb"), cfg::AclCreate{unbound_acl("FB")}}}, root, {}},
  };
  Network serial = production;
  PolicyEnforcer enforcer(spec::PolicyVerifier(policies.policies()), SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  std::uint64_t coalesced_before = counter_value("enforcer.waves_coalesced");
  std::uint64_t split_before = counter_value("enforcer.waves_split");
  std::vector<QuarantineReport> reports =
      enforcer.enforce_with_quarantine_batch(production, batch, clock);

  // Disjoint islands -> one coalesced wave, both submissions applied.
  EXPECT_EQ(counter_value("enforcer.waves_coalesced") - coalesced_before, 1u);
  EXPECT_EQ(counter_value("enforcer.waves_split") - split_before, 0u);
  ASSERT_EQ(reports.size(), 2u);
  for (const QuarantineReport& report : reports) {
    EXPECT_TRUE(report.applied_any);
    EXPECT_EQ(report.applied_changes.size(), 1u);
    EXPECT_TRUE(report.quarantined.empty());
  }
  std::vector<QuarantineReport> oracle = serialized_oracle(serial, policies, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("submission " + std::to_string(i));
    expect_reports_equal(reports[i], oracle[i]);
  }
  EXPECT_EQ(production, serial);
}

TEST(Batch, DisabledCoalescingNeverFormsWaves) {
  Network production = two_islands();
  spec::PolicyVerifier policies{island_policies()};
  priv::PrivilegeSpec root;
  root.allow(priv::all_actions(), priv::Resource{"*", priv::ObjectKind::Device, ""});
  std::vector<BatchSubmission> batch = {
      {"alice", {{DeviceId("ra"), cfg::AclCreate{unbound_acl("FA")}}}, root, {}},
      {"bob", {{DeviceId("rb"), cfg::AclCreate{unbound_acl("FB")}}}, root, {}},
  };
  EnforcerOptions options;
  options.coalesce_waves = false;
  PolicyEnforcer enforcer(spec::PolicyVerifier(policies.policies()), SimulatedEnclave("v1", "hw"),
                          options);
  util::VirtualClock clock;
  std::uint64_t coalesced_before = counter_value("enforcer.waves_coalesced");
  std::vector<QuarantineReport> reports =
      enforcer.enforce_with_quarantine_batch(production, batch, clock);
  EXPECT_EQ(counter_value("enforcer.waves_coalesced") - coalesced_before, 0u);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].applied_any);
  EXPECT_TRUE(reports[1].applied_any);
}

TEST(Batch, WaveWithCombinationViolationFallsBackToSerialChecks) {
  // ra guards ha1 -> ha2 with two duplicate permits. One submission removes
  // both — each removal is clean alone (the twin still permits), jointly
  // they deny everything. The wave's coalesced check must catch it, split,
  // and re-check per submission so the reports stay oracle-identical: the
  // combination is rejected, and bob's disjoint benign change still lands.
  Network production = two_islands();
  AclEntry permit;
  permit.action = AclEntry::Action::Permit;
  permit.src = Ipv4Prefix::parse("10.1.1.0/24");
  permit.dst = Ipv4Prefix::parse("10.1.2.0/24");
  AclEntry deny;
  deny.action = AclEntry::Action::Deny;
  {
    Device& ra = production.device(DeviceId("ra"));
    Acl guard;
    guard.name = "GUARD";
    guard.entries = {permit, permit, deny};
    ra.add_acl(std::move(guard));
    ra.interface(InterfaceId("Gi0/0")).acl_in = "GUARD";
  }
  spec::PolicyVerifier policies{island_policies()};
  ASSERT_TRUE(policies.verify_network(production).ok());
  priv::PrivilegeSpec root;
  root.allow(priv::all_actions(), priv::Resource{"*", priv::ObjectKind::Device, ""});

  std::vector<BatchSubmission> batch = {
      {"mallory",
       {{DeviceId("ra"), cfg::AclEntryRemove{"GUARD", 1, permit}},
        {DeviceId("ra"), cfg::AclEntryRemove{"GUARD", 0, permit}}},
       root,
       {}},
      {"bob", {{DeviceId("rb"), cfg::AclCreate{unbound_acl("FB")}}}, root, {}},
  };
  Network serial = production;
  PolicyEnforcer enforcer(spec::PolicyVerifier(policies.policies()), SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  std::uint64_t split_before = counter_value("enforcer.waves_split");
  std::vector<QuarantineReport> reports =
      enforcer.enforce_with_quarantine_batch(production, batch, clock);

  EXPECT_EQ(counter_value("enforcer.waves_split") - split_before, 1u);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_FALSE(reports[0].applied_any);
  ASSERT_EQ(reports[0].quarantined.size(), 2u);
  for (const auto& entry : reports[0].quarantined)
    EXPECT_EQ(entry.second, "combination violates policies");
  EXPECT_TRUE(reports[1].applied_any);
  std::vector<QuarantineReport> oracle = serialized_oracle(serial, policies, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("submission " + std::to_string(i));
    expect_reports_equal(reports[i], oracle[i]);
  }
  EXPECT_EQ(production, serial);
  EXPECT_TRUE(policies.verify_network(production).ok());
  EXPECT_TRUE(enforcer.audit_intact());
}

TEST(Enforcer, EndToEndWithTwin) {
  // Full pipeline: broken production -> twin session -> enforce -> healthy.
  Network production = scen::build_enterprise();
  auto policies = scen::enterprise_policies(production);
  production.device(DeviceId("r7")).interface(InterfaceId("Fa0/2")).access_vlan = 10;

  dp::Dataplane dataplane = dp::Dataplane::compute(production);
  msp::Ticket ticket = msp::Ticket::connectivity(7, DeviceId("h2"), DeviceId("h4"), "vlan",
                                                 priv::TaskClass::VlanIssue);
  twin::TwinNetwork twin = twin::TwinNetwork::create(production, dataplane, ticket);
  twin.run("interface r7 Fa0/2 switchport-access-vlan 20");

  PolicyEnforcer enforcer(spec::PolicyVerifier(policies), SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  EnforcementReport report =
      enforcer.enforce(production, twin.extract_changes(), twin.privileges(), clock, "tech");
  EXPECT_TRUE(report.applied);
  EXPECT_TRUE(spec::PolicyVerifier(policies).verify_network(production).ok());
  EXPECT_TRUE(enforcer.audit_intact());
}

// ---------------------------------------------------------------- ledger --

TEST(Ledger, QuorumAppendReplicatesToEveryFollower) {
  ReplicatedAuditLedger ledger(SimulatedEnclave("v1", "hw"), 3);
  ledger.leader_log().append(1, "tech", AuditCategory::Session, "session open");
  ledger.leader_log().append(2, "tech", AuditCategory::Command, "show config");
  QuorumStatus status = ledger.commit_appended();
  EXPECT_TRUE(status.committed);
  EXPECT_EQ(status.replicas, 3u);
  EXPECT_EQ(status.acks, 3u);
  EXPECT_TRUE(ledger.intact());
  EXPECT_EQ(ledger.commits(), 1u);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(ledger.replica_for_test(i).log.size(), 2u);
    EXPECT_EQ(ledger.replica_for_test(i).log.head(), ledger.leader_log().head());
  }
}

TEST(Ledger, SingleReplicaDegeneratesToSealedChain) {
  // replica_count < 1 clamps to 1: the classic single sealed chain.
  ReplicatedAuditLedger ledger(SimulatedEnclave("v1", "hw"), 0);
  EXPECT_EQ(ledger.replica_count(), 1u);
  ledger.leader_log().append(1, "tech", AuditCategory::Session, "solo");
  QuorumStatus status = ledger.commit_appended();
  EXPECT_TRUE(status.committed);  // 1 ack of 1 replica is a majority
  EXPECT_EQ(status.acks, 1u);
  EXPECT_TRUE(ledger.intact());
}

TEST(Ledger, DetectsFollowerRollback) {
  // The attacker restores a follower's older log + matching sealed head
  // (both internally consistent); the replica's monotonic enclave counter —
  // which cannot roll back — exposes the stale seal.
  ReplicatedAuditLedger ledger(SimulatedEnclave("v1", "hw"), 3);
  ledger.leader_log().append(1, "tech", AuditCategory::Session, "epoch 1");
  ASSERT_TRUE(ledger.commit_appended().committed);
  AuditLog stale_log = ledger.replica_for_test(1).log;
  SealedBlob stale_head = ledger.replica_for_test(1).sealed_head;

  ledger.leader_log().append(2, "tech", AuditCategory::Command, "epoch 2");
  ASSERT_TRUE(ledger.commit_appended().committed);
  ASSERT_TRUE(ledger.intact());

  ledger.replica_for_test(1).log = stale_log;
  ledger.replica_for_test(1).sealed_head = stale_head;
  EXPECT_FALSE(ledger.intact());
  bool rollback_flagged = false, length_flagged = false;
  for (const std::string& problem : ledger.problems()) {
    rollback_flagged |= problem.find("rollback") != std::string::npos;
    length_flagged |= problem.find("holds 1 entries") != std::string::npos;
  }
  EXPECT_TRUE(rollback_flagged);
  EXPECT_TRUE(length_flagged);
}

TEST(Ledger, DetectsInPlaceFollowerTamper) {
  ReplicatedAuditLedger ledger(SimulatedEnclave("v1", "hw"), 3);
  ledger.leader_log().append(1, "tech", AuditCategory::Violation, "quarantined: bad acl");
  ledger.leader_log().append(2, "tech", AuditCategory::Session, "session closed");
  ASSERT_TRUE(ledger.commit_appended().committed);

  // A naive edit (no re-chaining) breaks the replica's own hash chain.
  ledger.replica_for_test(2).log.mutable_entries_for_test()[0].message = "nothing happened";
  EXPECT_FALSE(ledger.intact());
}

TEST(Ledger, DetectsEquivocationAfterConsistentRewrite) {
  // The staged attack from scenarios/adversary.hpp: the compromised replica
  // rewrites an entry, re-chains every later hash and reseals through its
  // own enclave, so every single-replica check passes — only the
  // cross-replica comparison catches the fork.
  ReplicatedAuditLedger ledger(SimulatedEnclave("v1", "hw"), 3);
  ledger.leader_log().append(1, "tech", AuditCategory::Session, "session open");
  ledger.leader_log().append(2, "tech", AuditCategory::Violation, "quarantined: bad acl");
  ledger.leader_log().append(3, "tech", AuditCategory::Session, "session closed");
  ASSERT_TRUE(ledger.commit_appended().committed);

  auto pristine = scen::equivocate_replica(ledger, 1, 1, "applied: bad acl");
  // The forged chain still verifies link by link...
  EXPECT_TRUE(ledger.replica_for_test(1).log.verify_chain());
  // ...but the ledger flags the divergence at the rewritten sequence.
  EXPECT_FALSE(ledger.intact());
  bool equivocation_flagged = false;
  for (const std::string& problem : ledger.problems())
    equivocation_flagged |= problem.find("equivocates: divergent entry at sequence 1") !=
                            std::string::npos;
  EXPECT_TRUE(equivocation_flagged);

  scen::restore_replica(ledger, 1, std::move(pristine));
  EXPECT_TRUE(ledger.intact());
  EXPECT_THROW(scen::equivocate_replica(ledger, 1, 99, "x"), util::Error);
}

TEST(Ledger, EnforcerRunsReplicatedAndStaysIntact) {
  EnforcerFixture fixture;
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"),
                          EnforcerOptions{.audit_replicas = 5});
  util::VirtualClock clock;
  std::vector<ConfigChange> changes = {
      {DeviceId("r6"), cfg::OspfCostChange{InterfaceId("Gi0/0"), std::nullopt, 50u}}};
  EnforcementReport report =
      enforcer.enforce(fixture.production, changes, fixture.root, clock, "tech");
  EXPECT_TRUE(report.applied);
  EXPECT_TRUE(enforcer.audit_intact());
  PolicyEnforcer::LedgerStats stats = enforcer.ledger_stats();
  EXPECT_EQ(stats.replicas, 5u);
  EXPECT_GT(stats.commits, 0u);
  EXPECT_EQ(stats.quorum_failures, 0u);
  EXPECT_EQ(stats.rejected_acks, 0u);
}

// -------------------------------------------------------- approval gating --

TEST(ApprovalGate, NeedsApprovalTaxonomy) {
  // High-impact actions always need m-of-n sign-off.
  EXPECT_TRUE(needs_approval(Action::EraseConfig, priv::TaskClass::AclChange));
  EXPECT_TRUE(needs_approval(Action::Reboot, priv::TaskClass::OspfIssue));
  // Mutations outside the ticket's task class do too.
  EXPECT_TRUE(needs_approval(Action::StaticRouteAdd, priv::TaskClass::AclChange));
  // In-class mutations and reads do not.
  EXPECT_FALSE(needs_approval(Action::AclEdit, priv::TaskClass::AclChange));
  EXPECT_FALSE(needs_approval(Action::ShowConfig, priv::TaskClass::Monitoring));
}

TEST(ApprovalGate, AttestedApprovalRoundTrip) {
  SimulatedEnclave enclave("v1", "hw");
  priv::Approval approval = make_attested_approval(enclave, "customer-admin",
                                                   priv::PrincipalRole::Customer, "hash-1");
  EXPECT_TRUE(verify_attested_approval(enclave, approval));

  // A doctored statement fails verification.
  priv::Approval doctored = approval;
  doctored.subject = "hash-2";
  EXPECT_FALSE(verify_attested_approval(enclave, doctored));
  // So does a signature minted against a different hardware root.
  SimulatedEnclave foreign("v1", "other-hw");
  EXPECT_FALSE(verify_attested_approval(foreign, approval));
}

// The honest and colluding submissions the gate tests share: an out-of-class
// static route on an ACL-class ticket, valid against the enterprise policies.
std::vector<ConfigChange> out_of_class_route() {
  return {{DeviceId("r6"),
           cfg::StaticRouteAdd{net::StaticRoute{Ipv4Prefix::parse("203.0.113.0/24"),
                                                Ipv4Address::parse("10.1.16.1")}}}};
}

SubmissionApprovals gated_submission(const SimulatedEnclave& enclave) {
  SubmissionApprovals approvals;
  approvals.gate = true;
  approvals.task = priv::TaskClass::AclChange;
  approvals.subject = "ticket-hash-1";
  approvals.min_required = 2;
  approvals.approvals.required = 2;
  approvals.approvals.approvals = {
      make_attested_approval(enclave, "customer-admin", priv::PrincipalRole::Customer,
                             approvals.subject),
      make_attested_approval(enclave, "msp-supervisor", priv::PrincipalRole::Msp,
                             approvals.subject),
  };
  return approvals;
}

TEST(ApprovalGate, SatisfiedMOfNAppliesOutOfClassChange) {
  EnforcerFixture fixture;
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  QuarantineReport report =
      enforcer.enforce_with_quarantine(fixture.production, out_of_class_route(), fixture.root,
                                       clock, "tech", gated_submission(enforcer.enclave()));
  EXPECT_TRUE(report.quarantined.empty());
  ASSERT_EQ(report.applied_changes.size(), 1u);
  EXPECT_TRUE(enforcer.audit_intact());
}

TEST(ApprovalGate, QuarantinesColludingSelfApprovedSet) {
  EnforcerFixture fixture;
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  Network pristine = fixture.production;

  SubmissionApprovals colluding = gated_submission(enforcer.enclave());
  colluding.approvals =
      scen::colluding_approval_set(enforcer.enclave(), "tech", colluding.subject);
  QuarantineReport report = enforcer.enforce_with_quarantine(
      fixture.production, out_of_class_route(), fixture.root, clock, "tech", colluding);
  EXPECT_TRUE(report.applied_changes.empty());
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].second.find("approval: "), 0u);
  EXPECT_NE(report.quarantined[0].second.find("m-of-n downgrade"), std::string::npos);
  EXPECT_NE(report.quarantined[0].second.find("self-approval by tech"), std::string::npos);
  EXPECT_EQ(fixture.production, pristine);

  // The interception is on the audit chain.
  bool audited = false;
  for (const AuditEntry& entry : enforcer.audit().entries())
    audited |= entry.message.find("quarantined (approval)") != std::string::npos;
  EXPECT_TRUE(audited);
}

TEST(ApprovalGate, UngatedSubmissionBypassesTheGate) {
  // Legacy path: gate off (the 5-arg overload) never quarantines on
  // approvals, even for an out-of-class change.
  EnforcerFixture fixture;
  PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
  util::VirtualClock clock;
  QuarantineReport report = enforcer.enforce_with_quarantine(
      fixture.production, out_of_class_route(), fixture.root, clock, "tech");
  EXPECT_TRUE(report.quarantined.empty());
  ASSERT_EQ(report.applied_changes.size(), 1u);
}

TEST(ApprovalGate, GatedIncrementalMatchesGatedReferenceOracle) {
  // The bit-identical-oracle property must survive the approval gate: both
  // pipelines quarantine the same change with the same reason string.
  auto run = [](bool incremental, const SubmissionApprovals& approvals) {
    EnforcerFixture fixture;
    PolicyEnforcer enforcer(fixture.policies, SimulatedEnclave("v1", "hw"));
    util::VirtualClock clock;
    std::vector<ConfigChange> session = out_of_class_route();
    session.push_back({DeviceId("r6"),
                       cfg::OspfCostChange{InterfaceId("Gi0/0"), std::nullopt, 50u}});
    return incremental
               ? enforcer.enforce_with_quarantine(fixture.production, session, fixture.root,
                                                  clock, "tech", approvals)
               : enforcer.enforce_with_quarantine_reference(fixture.production, session,
                                                            fixture.root, clock, "tech",
                                                            approvals);
  };
  SimulatedEnclave enclave("v1", "hw");  // same identity the runs construct
  for (const SubmissionApprovals& approvals :
       {gated_submission(enclave),
        SubmissionApprovals{true, priv::TaskClass::AclChange, "ticket-hash-1", 2,
                            scen::colluding_approval_set(enclave, "tech", "ticket-hash-1")}}) {
    QuarantineReport incremental = run(true, approvals);
    QuarantineReport reference = run(false, approvals);
    expect_reports_equal(incremental, reference);
  }
}

}  // namespace
}  // namespace heimdall::enforce
