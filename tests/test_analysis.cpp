// Tests for the incremental, cached analysis::Engine: change-impact
// classification, memoization, dirty tracking, parallel tracing, and the
// core soundness property — an incremental chain of randomized config
// changes must be bit-identical to computing each state from scratch.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "config/diff.hpp"
#include "config/parse.hpp"
#include "scenarios/enterprise.hpp"
#include "util/random.hpp"

namespace heimdall::analysis {
namespace {

using namespace heimdall::net;

Network enterprise() { return scen::build_enterprise(); }

cfg::ConfigChange secret_change(const Network& network) {
  return {network.devices().front().id(), cfg::SecretChange{"enable_password"}};
}

/// A static route towards an unused prefix with a resolvable next hop.
/// `serial` keeps repeated routes distinct.
std::optional<cfg::ConfigChange> static_route_add(const Network& network, const DeviceId& router,
                                                  unsigned serial) {
  const Device& device = network.device(router);
  for (const Interface& iface : device.interfaces()) {
    if (!iface.address || iface.shutdown) continue;
    std::uint32_t candidate = iface.address->ip.value() + 1;
    if (!iface.address->subnet().contains(Ipv4Address(candidate)))
      candidate = iface.address->ip.value() - 1;
    StaticRoute route;
    route.prefix = Ipv4Prefix(Ipv4Address::of(10, 250, static_cast<std::uint8_t>(serial % 250), 0),
                              24);
    route.next_hop = Ipv4Address(candidate);
    return cfg::ConfigChange{router, cfg::StaticRouteAdd{route}};
  }
  return std::nullopt;
}

void expect_identical(const dp::ReachabilityMatrix& a, const dp::ReachabilityMatrix& b,
                      const std::string& context) {
  ASSERT_EQ(a.pairs().size(), b.pairs().size()) << context;
  for (const dp::PairReachability& expected : a.pairs()) {
    const dp::PairReachability& actual = b.pair(expected.src, expected.dst);
    EXPECT_EQ(expected.disposition, actual.disposition)
        << context << ": " << expected.src.str() << " -> " << expected.dst.str();
    EXPECT_EQ(expected.path, actual.path)
        << context << ": " << expected.src.str() << " -> " << expected.dst.str();
  }
}

std::vector<std::string> fib_lines(const Network& network, const dp::Dataplane& dataplane) {
  std::vector<std::string> out;
  for (const Device& device : network.devices()) {
    for (const dp::Route& route : dataplane.fib(device.id()).routes())
      out.push_back(device.id().str() + " " + route.to_string());
  }
  return out;
}

TEST(Impact, ClassificationTable) {
  EXPECT_EQ(classify_impact({DeviceId("r1"), cfg::SecretChange{"ipsec_key"}}), Impact::None);
  EXPECT_EQ(classify_impact({DeviceId("r1"), cfg::AclDelete{"acl"}}), Impact::TraceOnly);
  EXPECT_EQ(classify_impact({DeviceId("r1"), cfg::AclEntryAdd{"acl", 0, {}}}), Impact::TraceOnly);
  EXPECT_EQ(classify_impact({DeviceId("r1"),
                             cfg::InterfaceAclBindingChange{InterfaceId("Gi0/0"),
                                                            cfg::AclDirection::In, "", "acl"}}),
            Impact::TraceOnly);
  EXPECT_EQ(classify_impact({DeviceId("r1"), cfg::StaticRouteAdd{{}}}), Impact::FibLocal);
  EXPECT_EQ(classify_impact({DeviceId("r1"), cfg::StaticRouteRemove{{}}}), Impact::FibLocal);
  EXPECT_EQ(classify_impact(
                {DeviceId("r1"), cfg::InterfaceAdminChange{InterfaceId("Gi0/0"), false, true}}),
            Impact::Global);
  EXPECT_EQ(classify_impact({DeviceId("r1"), cfg::OspfNetworkAdd{{}}}), Impact::Global);
  EXPECT_EQ(classify_impact({DeviceId("r1"), cfg::VlanDeclare{10}}), Impact::Global);
}

TEST(Engine, MemoizesIdenticalNetworks) {
  Network network = enterprise();
  Engine engine;

  Snapshot first = engine.analyze(network);
  Snapshot second = engine.analyze(network);

  EXPECT_EQ(engine.stats().full_recomputes, 1u);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.dataplane.get(), second.dataplane.get());  // shared, not recomputed
  EXPECT_EQ(first.reachability.get(), second.reachability.get());
}

TEST(Engine, FingerprintTracksContent) {
  Network network = enterprise();
  Engine engine;
  std::string before = engine.fingerprint(network);
  EXPECT_EQ(before, engine.fingerprint(network));

  Network changed = network;
  cfg::apply_change(changed, *static_route_add(network, DeviceId("r1"), 0));
  EXPECT_NE(before, engine.fingerprint(changed));
}

TEST(Engine, CacheCapacityZeroDisablesMemoization) {
  Network network = enterprise();
  Engine engine(Options{.cache_capacity = 0, .trace_threads = 1});
  engine.analyze(network);
  engine.analyze(network);
  EXPECT_EQ(engine.stats().full_recomputes, 2u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST(Engine, LruEvictsOldestSnapshot) {
  Network network = enterprise();
  Engine engine(Options{.cache_capacity = 1, .trace_threads = 1});
  engine.analyze(network);

  Network other = network;
  cfg::apply_change(other, *static_route_add(network, DeviceId("r1"), 1));
  engine.analyze(other);   // evicts the first entry (capacity 1)
  engine.analyze(network); // must recompute
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(engine.stats().full_recomputes, 3u);
}

TEST(Engine, SecretChangeCarriesArtifactsForward) {
  Network network = enterprise();
  Engine engine;
  Snapshot base = engine.analyze(network);

  Network changed = network;
  cfg::ConfigChange change = secret_change(network);
  cfg::apply_change(changed, change);

  Snapshot after = engine.analyze(changed, base, {change});
  EXPECT_NE(after.digest, base.digest);  // secrets are part of the fingerprint
  EXPECT_EQ(after.dataplane.get(), base.dataplane.get());
  EXPECT_EQ(after.reachability.get(), base.reachability.get());
  EXPECT_EQ(engine.stats().carried_forward, 1u);
  EXPECT_EQ(engine.stats().recompute_count(), 1u);  // only the base analyze
}

TEST(Engine, AclChangeSharesDataplaneAndRetracesPartially) {
  Network network = enterprise();
  Engine engine;
  Snapshot base = engine.analyze(network);

  // Bind a new deny-all ACL inbound on a router that delivered traffic
  // actually crosses (so the change must re-trace at least one pair).
  std::set<DeviceId> on_path;
  for (const dp::PairReachability& pair : base.reachability->pairs())
    on_path.insert(pair.path.begin(), pair.path.end());

  const Device* router = nullptr;
  const Interface* iface = nullptr;
  for (const Device& device : network.devices()) {
    if (device.is_host() || on_path.count(device.id()) == 0) continue;
    for (const Interface& candidate : device.interfaces()) {
      if (candidate.address && !candidate.shutdown && candidate.acl_in.empty()) {
        router = &device;
        iface = &candidate;
        break;
      }
    }
    if (router) break;
  }
  ASSERT_NE(router, nullptr);

  Acl acl;
  acl.name = "test-deny-all";
  acl.entries.push_back(cfg::parse_acl_entry("deny ip any any"));
  std::vector<cfg::ConfigChange> changes{
      {router->id(), cfg::AclCreate{acl}},
      {router->id(), cfg::InterfaceAclBindingChange{iface->id, cfg::AclDirection::In, "",
                                                    acl.name}}};
  Network changed = network;
  cfg::apply_changes(changed, changes);

  Snapshot after = engine.analyze(changed, base, changes);
  // TraceOnly: the dataplane is shared untouched; only pairs whose path
  // crossed the router were re-traced.
  EXPECT_EQ(after.dataplane.get(), base.dataplane.get());
  EXPECT_EQ(engine.stats().incremental_recomputes, 1u);
  EXPECT_GT(engine.stats().retraced_pairs, 0u);
  EXPECT_LT(engine.stats().retraced_pairs, base.reachability->total_count());

  // Identical to a from-scratch analysis.
  Engine fresh(Options{.cache_capacity = 0, .trace_threads = 1});
  Snapshot reference = fresh.analyze(changed);
  expect_identical(*reference.reachability, *after.reachability, "acl incremental");
}

TEST(Engine, StaticRouteChangeRebuildsOneFib) {
  Network network = enterprise();
  Engine engine;
  Snapshot base = engine.analyze(network);

  cfg::ConfigChange change = *static_route_add(network, DeviceId("r3"), 7);
  Network changed = network;
  cfg::apply_change(changed, change);

  Snapshot after = engine.analyze(changed, base, {change});
  EXPECT_NE(after.dataplane.get(), base.dataplane.get());  // copied + rebuilt
  EXPECT_EQ(engine.stats().incremental_recomputes, 1u);
  EXPECT_EQ(engine.stats().full_recomputes, 1u);  // only the base analyze

  Engine fresh(Options{.cache_capacity = 0, .trace_threads = 1});
  Snapshot reference = fresh.analyze(changed);
  EXPECT_EQ(fib_lines(changed, *reference.dataplane), fib_lines(changed, *after.dataplane));
  expect_identical(*reference.reachability, *after.reachability, "static route incremental");
}

TEST(Engine, GlobalChangeFallsBackToFullRecompute) {
  Network network = enterprise();
  Engine engine;
  Snapshot base = engine.analyze(network);

  // Shut down a router interface: L2 / OSPF topology may move.
  const Device& router = network.device(DeviceId("r1"));
  const Interface& iface = router.interfaces().front();
  cfg::ConfigChange change{router.id(),
                           cfg::InterfaceAdminChange{iface.id, iface.shutdown, !iface.shutdown}};
  Network changed = network;
  cfg::apply_change(changed, change);

  Snapshot after = engine.analyze(changed, base, {change});
  EXPECT_EQ(engine.stats().full_recomputes, 2u);
  EXPECT_EQ(engine.stats().incremental_recomputes, 0u);

  Engine fresh(Options{.cache_capacity = 0, .trace_threads = 1});
  Snapshot reference = fresh.analyze(changed);
  expect_identical(*reference.reachability, *after.reachability, "global fallback");
}

TEST(Engine, DataplaneOnlySnapshotCompletesMatrixLater) {
  Network network = enterprise();
  Engine engine;

  Snapshot partial = engine.analyze_dataplane(network);
  EXPECT_TRUE(partial.valid());
  EXPECT_EQ(partial.reachability, nullptr);
  EXPECT_EQ(engine.stats().full_recomputes, 1u);

  Snapshot full = engine.analyze(network);
  EXPECT_EQ(full.dataplane.get(), partial.dataplane.get());  // dataplane reused
  EXPECT_NE(full.reachability, nullptr);
  EXPECT_EQ(engine.stats().full_recomputes, 1u);  // matrix completion, not a recompute
  EXPECT_EQ(engine.stats().matrix_completions, 1u);
}

TEST(Engine, ParallelTraceMatchesSerial) {
  Network network = enterprise();
  Engine serial(Options{.cache_capacity = 0, .trace_threads = 1});
  Engine parallel(Options{.cache_capacity = 0, .trace_threads = 4});

  Snapshot a = serial.analyze(network);
  Snapshot b = parallel.analyze(network);
  expect_identical(*a.reachability, *b.reachability, "parallel trace");
}

// ---------------------------------------------------------------------------
// Property test: a randomized sequence of config changes, applied one step
// at a time through the engine's incremental path, must produce exactly the
// same FIBs and reachability matrix as computing each step from scratch.
// ---------------------------------------------------------------------------

class ChangeSequenceGenerator {
 public:
  explicit ChangeSequenceGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Generates one change valid against the current `network` state.
  cfg::ConfigChange next(const Network& network) {
    for (;;) {
      switch (rng_.next_in(0, 9)) {
        case 0:
        case 1: {  // FibLocal: add a static route
          if (auto change = static_route_add(network, random_router(network), serial_++))
            return *change;
          break;
        }
        case 2: {  // FibLocal: remove an existing static route
          if (auto change = static_route_remove(network)) return *change;
          break;
        }
        case 3: {  // TraceOnly: create an ACL
          Acl acl;
          acl.name = "gen-acl-" + std::to_string(serial_++);
          acl.entries.push_back(cfg::parse_acl_entry(
              rng_.next_in(0, 1) == 0 ? "deny ip 10.0.10.0 0.0.0.255 10.0.30.0 0.0.0.255"
                                      : "permit ip any any"));
          return {random_router(network), cfg::AclCreate{acl}};
        }
        case 4: {  // TraceOnly: append an entry to an existing ACL
          if (auto change = acl_entry_add(network)) return *change;
          break;
        }
        case 5: {  // TraceOnly: (un)bind an ACL on an interface
          if (auto change = acl_binding_change(network)) return *change;
          break;
        }
        case 6:  // None: rotate a secret
          return {random_router(network), cfg::SecretChange{"snmp_community"}};
        case 7: {  // Global: toggle a router interface
          const Device& device = network.device(random_router(network));
          if (device.interfaces().empty()) break;
          const Interface& iface = pick_interface(device);
          return {device.id(),
                  cfg::InterfaceAdminChange{iface.id, iface.shutdown, !iface.shutdown}};
        }
        case 8: {  // Global: change an OSPF interface cost
          const Device& device = network.device(random_router(network));
          if (!device.ospf() || device.interfaces().empty()) break;
          const Interface& iface = pick_interface(device);
          auto cost = static_cast<unsigned>(rng_.next_in(1, 60));
          return {device.id(), cfg::OspfCostChange{iface.id, iface.ospf_cost, cost}};
        }
        case 9: {  // Global: declare a VLAN
          auto vlan = static_cast<VlanId>(rng_.next_in(100, 200));
          const Device& device = network.device(random_router(network));
          if (device.has_vlan(vlan)) break;
          return {device.id(), cfg::VlanDeclare{vlan}};
        }
      }
    }
  }

 private:
  DeviceId random_router(const Network& network) {
    std::vector<DeviceId> routers = network.device_ids(DeviceKind::Router);
    return routers[rng_.next_in(0, routers.size() - 1)];
  }

  const Interface& pick_interface(const Device& device) {
    return device.interfaces()[rng_.next_in(0, device.interfaces().size() - 1)];
  }

  std::optional<cfg::ConfigChange> static_route_remove(const Network& network) {
    for (const Device& device : network.devices()) {
      if (!device.static_routes().empty()) {
        const auto& routes = device.static_routes();
        return cfg::ConfigChange{
            device.id(), cfg::StaticRouteRemove{routes[rng_.next_in(0, routes.size() - 1)]}};
      }
    }
    return std::nullopt;
  }

  std::optional<cfg::ConfigChange> acl_entry_add(const Network& network) {
    for (const Device& device : network.devices()) {
      if (device.acls().empty()) continue;
      const Acl& acl = device.acls()[rng_.next_in(0, device.acls().size() - 1)];
      std::size_t index = rng_.next_in(0, acl.entries.size());
      return cfg::ConfigChange{
          device.id(),
          cfg::AclEntryAdd{acl.name, index, cfg::parse_acl_entry("permit ip any any")}};
    }
    return std::nullopt;
  }

  std::optional<cfg::ConfigChange> acl_binding_change(const Network& network) {
    for (const Device& device : network.devices()) {
      if (device.acls().empty() || device.interfaces().empty()) continue;
      const Acl& acl = device.acls()[rng_.next_in(0, device.acls().size() - 1)];
      const Interface& iface = pick_interface(device);
      bool inbound = rng_.next_in(0, 1) == 0;
      const std::string& old_acl = inbound ? iface.acl_in : iface.acl_out;
      std::string new_acl = old_acl == acl.name ? std::string{} : acl.name;
      return cfg::ConfigChange{
          device.id(),
          cfg::InterfaceAclBindingChange{
              iface.id, inbound ? cfg::AclDirection::In : cfg::AclDirection::Out, old_acl,
              new_acl}};
    }
    return std::nullopt;
  }

  util::Rng rng_;
  unsigned serial_ = 0;
};

TEST(EngineProperty, IncrementalChainMatchesFromScratch) {
  constexpr int kSteps = 25;
  for (std::uint64_t seed : {11u, 42u, 1337u}) {
    Network network = enterprise();
    ChangeSequenceGenerator generator(seed);

    Engine incremental(Options{.cache_capacity = 0, .trace_threads = 1});
    Snapshot snapshot = incremental.analyze(network);

    for (int step = 0; step < kSteps; ++step) {
      cfg::ConfigChange change = generator.next(network);
      cfg::apply_change(network, change);
      snapshot = incremental.analyze(network, snapshot, {change});

      Engine scratch(Options{.cache_capacity = 0, .trace_threads = 1});
      Snapshot reference = scratch.analyze(network);

      std::string context = "seed " + std::to_string(seed) + " step " + std::to_string(step) +
                            " (" + change.summary() + ")";
      EXPECT_EQ(fib_lines(network, *reference.dataplane), fib_lines(network, *snapshot.dataplane))
          << context;
      expect_identical(*reference.reachability, *snapshot.reachability, context);
    }
    // The chain must actually have exercised the incremental paths.
    EXPECT_GT(incremental.stats().incremental_recomputes + incremental.stats().carried_forward,
              0u)
        << "seed " << seed;
  }
}

TEST(EngineProperty, BatchedChangesetMatchesFromScratch) {
  for (std::uint64_t seed : {7u, 99u}) {
    Network network = enterprise();
    ChangeSequenceGenerator generator(seed);

    Engine engine(Options{.cache_capacity = 0, .trace_threads = 1});
    Snapshot base = engine.analyze(network);

    std::vector<cfg::ConfigChange> changes;
    for (int i = 0; i < 8; ++i) {
      cfg::ConfigChange change = generator.next(network);
      cfg::apply_change(network, change);
      changes.push_back(std::move(change));
    }

    Snapshot after = engine.analyze(network, base, changes);
    Engine scratch(Options{.cache_capacity = 0, .trace_threads = 1});
    Snapshot reference = scratch.analyze(network);
    EXPECT_EQ(fib_lines(network, *reference.dataplane), fib_lines(network, *after.dataplane));
    expect_identical(*reference.reachability, *after.reachability,
                     "batched seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace heimdall::analysis
