// Property-based tests: randomized networks and inputs, checked against
// invariants rather than fixed expectations. Seeds are parameterized so each
// suite runs across several deterministic universes.
#include <gtest/gtest.h>

#include <algorithm>

#include "config/diff.hpp"
#include "config/parse.hpp"
#include "config/serialize.hpp"
#include "dataplane/reachability.hpp"
#include "enforcer/audit.hpp"
#include "enforcer/enforcer.hpp"
#include "enforcer/scheduler.hpp"
#include "privilege/generator.hpp"
#include "scenarios/builder.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"
#include "spec/mine.hpp"
#include "twin/console.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace heimdall {
namespace {

using namespace heimdall::net;
using util::Rng;

/// Builds a random tree-topology OSPF network: `routers` routers, one host
/// hanging off each of a random subset. All interfaces OSPF area 0.
Network random_tree_network(Rng& rng, int routers) {
  Network network("random");
  for (int i = 0; i < routers; ++i) network.add_device(scen::make_router("r" + std::to_string(i)));

  // Tree edges: node i attaches to a random earlier node.
  for (int i = 1; i < routers; ++i) {
    int parent = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i)));
    auto ip_a = Ipv4Address::of(10, static_cast<std::uint8_t>(parent),
                                static_cast<std::uint8_t>(i), 1);
    auto ip_b = Ipv4Address::of(10, static_cast<std::uint8_t>(parent),
                                static_cast<std::uint8_t>(i), 2);
    scen::connect_routers(network, "r" + std::to_string(parent), "t" + std::to_string(i), ip_a,
                          "r" + std::to_string(i), "u" + std::to_string(parent), ip_b);
  }

  // Hosts on a random subset of routers (always at least two).
  int hosts = 0;
  for (int i = 0; i < routers; ++i) {
    if (hosts >= 2 && !rng.chance(0.6)) continue;
    auto gateway = Ipv4Address::of(10, 200, static_cast<std::uint8_t>(i), 1);
    auto address = Ipv4Address::of(10, 200, static_cast<std::uint8_t>(i), 10);
    std::string host = "h" + std::to_string(i);
    network.add_device(scen::make_host(host, address, 24, gateway));
    scen::attach_host_routed(network, "r" + std::to_string(i), "host0", gateway, 24, host);
    ++hosts;
  }

  for (Device& device : network.devices()) {
    if (!device.is_router()) continue;
    for (const Interface& iface : device.interfaces()) {
      if (iface.address) scen::ospf_network(device, iface.address->subnet(), 0);
    }
  }
  network.validate();
  return network;
}

/// Applies a random benign mutation to the network; returns a description.
std::string random_mutation(Rng& rng, Network& network) {
  std::vector<DeviceId> routers = network.device_ids(DeviceKind::Router);
  Device& device = network.device(rng.pick(routers));
  switch (rng.next_below(5)) {
    case 0: {
      // Toggle a non-host interface cost.
      auto& ifaces = device.interfaces();
      Interface& iface = ifaces[static_cast<std::size_t>(rng.next_below(ifaces.size()))];
      iface.ospf_cost = static_cast<unsigned>(rng.next_in(1, 100));
      return "cost " + device.id().str() + ":" + iface.id.str();
    }
    case 1: {
      StaticRoute route;
      route.prefix = Ipv4Prefix(Ipv4Address::of(192, 0, 2, 0), 24);
      route.next_hop = Ipv4Address::of(10, 200, 0, static_cast<std::uint8_t>(rng.next_below(250)));
      if (std::find(device.static_routes().begin(), device.static_routes().end(), route) ==
          device.static_routes().end()) {
        device.static_routes().push_back(route);
      }
      return "static " + device.id().str();
    }
    case 2: {
      VlanId vlan = static_cast<VlanId>(rng.next_in(2, 4094));
      if (!device.has_vlan(vlan)) device.vlans().push_back(vlan);
      return "vlan " + device.id().str();
    }
    case 3: {
      Acl* acl = device.acls().empty() ? nullptr : &device.acls().front();
      if (!acl) {
        Acl fresh;
        fresh.name = "GEN";
        device.add_acl(fresh);
        acl = device.find_acl("GEN");
      }
      AclEntry entry;
      entry.action = rng.chance(0.5) ? AclEntry::Action::Permit : AclEntry::Action::Deny;
      entry.src = Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(rng.next())),
                             static_cast<unsigned>(rng.next_below(33)));
      acl->entries.insert(
          acl->entries.begin() +
              static_cast<std::ptrdiff_t>(rng.next_below(acl->entries.size() + 1)),
          entry);
      return "acl " + device.id().str();
    }
    default: {
      auto& ifaces = device.interfaces();
      Interface& iface = ifaces[static_cast<std::size_t>(rng.next_below(ifaces.size()))];
      iface.shutdown = !iface.shutdown;
      return "shutdown " + device.id().str() + ":" + iface.id.str();
    }
  }
}

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyTest, ConfigRoundTripOnRandomNetworks) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    Network network = random_tree_network(rng, static_cast<int>(rng.next_in(3, 12)));
    for (const Device& device : network.devices()) {
      Device parsed = cfg::parse_device(cfg::serialize_device(device));
      EXPECT_EQ(parsed, device) << device.id().str() << " seed=" << GetParam();
    }
  }
}

TEST_P(PropertyTest, TreeNetworksAreFullyReachable) {
  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    Network network = random_tree_network(rng, static_cast<int>(rng.next_in(3, 10)));
    dp::Dataplane dataplane = dp::Dataplane::compute(network);
    dp::ReachabilityMatrix matrix = dp::ReachabilityMatrix::compute(network, dataplane);
    EXPECT_EQ(matrix.reachable_count(), matrix.total_count())
        << "seed=" << GetParam() << " round=" << round;
  }
}

TEST_P(PropertyTest, DeliveredTracesEndAtOwner) {
  Rng rng(GetParam());
  Network network = random_tree_network(rng, 8);
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  dp::ReachabilityMatrix matrix = dp::ReachabilityMatrix::compute(network, dataplane);
  for (const dp::PairReachability& pair : matrix.pairs()) {
    ASSERT_FALSE(pair.path.empty());
    EXPECT_EQ(pair.path.front(), pair.src);
    if (pair.reachable()) {
      EXPECT_EQ(pair.path.back(), pair.dst);
    }
    EXPECT_LE(pair.path.size(), 33u);
  }
}

TEST_P(PropertyTest, DiffApplyIsIdentity) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    Network before = random_tree_network(rng, static_cast<int>(rng.next_in(3, 8)));
    Network after = before;
    int mutations = static_cast<int>(rng.next_in(1, 6));
    for (int i = 0; i < mutations; ++i) random_mutation(rng, after);

    auto changes = cfg::diff_networks(before, after);
    Network replayed = before;
    cfg::apply_changes(replayed, changes);
    EXPECT_EQ(replayed, after) << "seed=" << GetParam() << " round=" << round;

    // Diffing identical networks after replay yields nothing.
    EXPECT_TRUE(cfg::diff_networks(replayed, after).empty());
  }
}

TEST_P(PropertyTest, SchedulerPreservesChangesAndFinalState) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    Network before = random_tree_network(rng, static_cast<int>(rng.next_in(3, 8)));
    Network after = before;
    int mutations = static_cast<int>(rng.next_in(2, 7));
    for (int i = 0; i < mutations; ++i) random_mutation(rng, after);

    auto changes = cfg::diff_networks(before, after);
    auto ordered = enforce::schedule_changes(changes);
    ASSERT_EQ(ordered.size(), changes.size());
    // Permutation check.
    for (const cfg::ConfigChange& change : changes) {
      EXPECT_NE(std::find(ordered.begin(), ordered.end(), change), ordered.end());
    }
    // Replaying the scheduled order lands on the same final state.
    Network replayed = before;
    cfg::apply_changes(replayed, ordered);
    EXPECT_EQ(replayed, after) << "seed=" << GetParam() << " round=" << round;
  }
}

TEST_P(PropertyTest, AuditChainSurvivesAnythingButTampering) {
  Rng rng(GetParam());
  enforce::AuditLog log;
  int entries = static_cast<int>(rng.next_in(5, 40));
  for (int i = 0; i < entries; ++i) {
    log.append(static_cast<std::int64_t>(i), "actor" + std::to_string(rng.next_below(3)),
               enforce::AuditCategory::Command, "message " + std::to_string(rng.next()));
  }
  EXPECT_TRUE(log.verify_chain());

  // Any single corrupted entry is detected at exactly that index.
  std::size_t victim = static_cast<std::size_t>(rng.next_below(log.size()));
  enforce::AuditLog corrupted = log;
  corrupted.mutable_entries_for_test()[victim].message += "!";
  EXPECT_FALSE(corrupted.verify_chain());
  EXPECT_EQ(corrupted.first_corrupt_index(), victim);
}

TEST_P(PropertyTest, GeneratedPrivilegesNeverAllowHighImpact) {
  Rng rng(GetParam());
  Network network = random_tree_network(rng, 6);
  for (priv::TaskClass task :
       {priv::TaskClass::Connectivity, priv::TaskClass::OspfIssue, priv::TaskClass::VlanIssue,
        priv::TaskClass::IspReconfig, priv::TaskClass::AclChange, priv::TaskClass::Monitoring}) {
    priv::PrivilegeSpec spec = priv::generate_privileges(network, task);
    for (const Device& device : network.devices()) {
      EXPECT_FALSE(spec.allows(priv::Action::EraseConfig,
                               priv::Resource::whole_device(device.id())));
      EXPECT_FALSE(spec.allows(priv::Action::Reboot, priv::Resource::whole_device(device.id())));
      for (const char* field : {"enable_password", "snmp_community", "ipsec_key"}) {
        EXPECT_FALSE(
            spec.allows(priv::Action::ChangeSecret, priv::Resource::secret(device.id(), field)));
      }
    }
  }
}

TEST_P(PropertyTest, FibLookupAlwaysContainsQuery) {
  Rng rng(GetParam());
  dp::Fib fib;
  std::vector<Ipv4Prefix> prefixes;
  for (int i = 0; i < 200; ++i) {
    Ipv4Prefix prefix(Ipv4Address(static_cast<std::uint32_t>(rng.next())),
                      static_cast<unsigned>(rng.next_below(33)));
    dp::Route route;
    route.prefix = prefix;
    route.protocol = dp::RouteProtocol::Static;
    route.out_iface = InterfaceId("e0");
    route.admin_distance = 1;
    fib.insert(route);
    prefixes.push_back(prefix);
  }
  for (int i = 0; i < 500; ++i) {
    Ipv4Address probe(static_cast<std::uint32_t>(rng.next()));
    auto route = fib.lookup(probe);
    if (route) {
      EXPECT_TRUE(route->prefix.contains(probe));
      // No inserted prefix that contains the probe is longer than the match.
      for (const Ipv4Prefix& prefix : prefixes) {
        if (prefix.contains(probe)) EXPECT_LE(prefix.length(), route->prefix.length());
      }
    } else {
      for (const Ipv4Prefix& prefix : prefixes) EXPECT_FALSE(prefix.contains(probe));
    }
  }
}

TEST_P(PropertyTest, InterfaceDownNeverHelpsOnTrees) {
  // On ACL-free tree topologies there is exactly one path per pair, so
  // taking any interface down can only shrink the reachable set.
  Rng rng(GetParam());
  Network network = random_tree_network(rng, 7);
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  auto baseline = dp::ReachabilityMatrix::compute(network, dataplane);

  std::vector<DeviceId> routers = network.device_ids(DeviceKind::Router);
  const Device& victim = network.device(rng.pick(routers));
  if (victim.interfaces().empty()) return;
  const Interface& iface =
      victim.interfaces()[static_cast<std::size_t>(rng.next_below(victim.interfaces().size()))];

  Network broken = network;
  broken.device(victim.id()).interface(iface.id).shutdown = true;
  auto degraded =
      dp::ReachabilityMatrix::compute(broken, dp::Dataplane::compute(broken));
  for (const auto& [src, dst, was, now] : dp::ReachabilityMatrix::diff(baseline, degraded)) {
    EXPECT_TRUE(was && !now) << src.str() << "->" << dst.str();
  }
}

TEST_P(PropertyTest, ConsoleParserNeverCrashesOnGarbage) {
  // Fuzz the console grammar: random token soup must either parse or throw
  // ParseError — never crash, never throw anything else.
  Rng rng(GetParam());
  const std::vector<std::string> vocabulary = {
      "show",    "config", "interface", "acl",   "route",  "ospf",   "vlan",   "ping",
      "r1",      "Gi0/0",  "up",        "down",  "add",    "remove", "permit", "deny",
      "ip",      "any",    "10.0.0.1",  "255.255.255.0", "area", "0", "99999", "in",
      "out",     "save",   "erase",     "secret", "-1",    "🦊",    "", "network-add"};
  for (int round = 0; round < 500; ++round) {
    std::string line;
    int tokens = static_cast<int>(rng.next_in(1, 9));
    for (int i = 0; i < tokens; ++i) {
      if (i > 0) line += " ";
      line += rng.pick(vocabulary);
    }
    try {
      twin::ParsedCommand command = twin::parse_command(line);
      EXPECT_FALSE(priv::to_string(command.action).empty());
    } catch (const util::ParseError&) {
      // expected for garbage
    }
  }
}

TEST_P(PropertyTest, ConfigParserNeverCrashesOnMutatedInput) {
  // Take a valid config and flip random bytes: the parser must either accept
  // the result or throw ParseError.
  Rng rng(GetParam());
  Network network = random_tree_network(rng, 5);
  std::string text = cfg::serialize_device(network.devices().front());
  for (int round = 0; round < 200; ++round) {
    std::string mutated = text;
    int flips = static_cast<int>(rng.next_in(1, 5));
    for (int i = 0; i < flips; ++i) {
      std::size_t position = static_cast<std::size_t>(rng.next_below(mutated.size()));
      mutated[position] = static_cast<char>('!' + rng.next_below(90));
    }
    try {
      (void)cfg::parse_device(mutated);
    } catch (const util::ParseError&) {
      // expected
    }
  }
}

TEST_P(PropertyTest, JsonParserNeverCrashesOnMutatedInput) {
  Rng rng(GetParam());
  const std::string seed_document =
      R"({"privileges":[{"effect":"allow","actions":["show-*"],)"
      R"("resource":{"device":"r3","kind":"interface","name":"*"}}],"n":[1,2.5,-3,true,null]})";
  for (int round = 0; round < 300; ++round) {
    std::string mutated = seed_document;
    int flips = static_cast<int>(rng.next_in(1, 4));
    for (int i = 0; i < flips; ++i) {
      std::size_t position = static_cast<std::size_t>(rng.next_below(mutated.size()));
      mutated[position] = static_cast<char>(' ' + rng.next_below(95));
    }
    try {
      (void)util::Json::parse(mutated);
    } catch (const util::ParseError&) {
      // expected
    }
  }
}

TEST_P(PropertyTest, InvertUnwindsRandomChangesets) {
  // The enforcer's undo-log replay depends on apply(c); apply(invert(c))
  // being an exact identity, including vector positions.
  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    Network base = random_tree_network(rng, static_cast<int>(rng.next_in(3, 8)));
    Network target = base;
    int mutations = static_cast<int>(rng.next_in(2, 9));
    for (int i = 0; i < mutations; ++i) random_mutation(rng, target);

    Network working = base;
    std::vector<cfg::ConfigChange> undo;
    for (const cfg::ConfigChange& change : cfg::diff_networks(base, target)) {
      undo.push_back(cfg::invert_change(working, change));
      cfg::apply_change(working, change);
    }
    EXPECT_EQ(working, target) << "seed=" << GetParam() << " round=" << round;
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) cfg::apply_change(working, *it);
    EXPECT_EQ(working, base) << "seed=" << GetParam() << " round=" << round;
  }
}

/// Runs a session through the incremental quarantine pipeline (sequential
/// and parallel attribution) and the copy-based reference; reports and final
/// networks must be identical.
void expect_quarantine_equivalence(const Network& production,
                                   const std::vector<spec::Policy>& policies,
                                   const std::vector<cfg::ConfigChange>& session) {
  priv::PrivilegeSpec root;
  root.allow(priv::all_actions(), priv::Resource{"*", priv::ObjectKind::Device, ""});

  Network reference_net = production;
  enforce::PolicyEnforcer reference(spec::PolicyVerifier(policies),
                                    enforce::SimulatedEnclave("v1", "hw"));
  util::VirtualClock reference_clock;
  enforce::QuarantineReport reference_report = reference.enforce_with_quarantine_reference(
      reference_net, session, root, reference_clock, "tech");

  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    Network incremental_net = production;
    enforce::PolicyEnforcer incremental(spec::PolicyVerifier(policies),
                                        enforce::SimulatedEnclave("v1", "hw"),
                                        enforce::EnforcerOptions{threads});
    util::VirtualClock clock;
    enforce::QuarantineReport report =
        incremental.enforce_with_quarantine(incremental_net, session, root, clock, "tech");

    EXPECT_EQ(report.applied_changes, reference_report.applied_changes) << threads;
    ASSERT_EQ(report.quarantined.size(), reference_report.quarantined.size()) << threads;
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
      EXPECT_EQ(report.quarantined[i].first, reference_report.quarantined[i].first) << i;
      EXPECT_EQ(report.quarantined[i].second, reference_report.quarantined[i].second) << i;
    }
    EXPECT_EQ(report.applied_any, reference_report.applied_any) << threads;
    EXPECT_EQ(incremental_net, reference_net) << "threads=" << threads;
  }
}

TEST_P(PropertyTest, QuarantineIncrementalMatchesReferenceOnScenarios) {
  // Both Table-1 networks with randomized diff-derived sessions.
  Rng rng(GetParam());
  for (int which = 0; which < 2; ++which) {
    Network production = which == 0 ? scen::build_enterprise() : scen::build_university();
    std::vector<spec::Policy> policies = which == 0 ? scen::enterprise_policies(production)
                                                    : scen::university_policies(production);
    Network target = production;
    int mutations = static_cast<int>(rng.next_in(2, 6));
    for (int i = 0; i < mutations; ++i) random_mutation(rng, target);
    std::vector<cfg::ConfigChange> session = cfg::diff_networks(production, target);
    if (session.empty()) continue;
    expect_quarantine_equivalence(production, policies, session);
  }
}

TEST_P(PropertyTest, QuarantineIncrementalMatchesReferenceOnRandomNetworks) {
  Rng rng(GetParam() ^ 0xbeefULL);
  Network production = random_tree_network(rng, static_cast<int>(rng.next_in(4, 9)));
  analysis::Engine miner;
  std::vector<spec::Policy> policies = spec::mine_policies(*miner.analyze(production).reachability);
  Network target = production;
  int mutations = static_cast<int>(rng.next_in(2, 7));
  for (int i = 0; i < mutations; ++i) random_mutation(rng, target);
  std::vector<cfg::ConfigChange> session = cfg::diff_networks(production, target);
  if (session.empty()) return;
  expect_quarantine_equivalence(production, policies, session);
}

TEST_P(PropertyTest, PlanCheckIncrementalMatchesReference) {
  Rng rng(GetParam() ^ 0x5c5cULL);
  Network production = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(production);
  Network target = production;
  int mutations = static_cast<int>(rng.next_in(2, 6));
  for (int i = 0; i < mutations; ++i) random_mutation(rng, target);
  std::vector<cfg::ConfigChange> ordered =
      enforce::schedule_changes(cfg::diff_networks(production, target));
  // Half the time, inject a step that fails replay so the abort path is
  // exercised too.
  if (rng.chance(0.5)) {
    ordered.insert(ordered.begin() + static_cast<std::ptrdiff_t>(
                       rng.next_below(ordered.size() + 1)),
                   {DeviceId("r7"), cfg::VlanRemove{3999}});
  }
  spec::PolicyVerifier incremental_policies(policies);
  spec::PolicyVerifier reference_policies(policies);
  enforce::SchedulePlan plan =
      enforce::check_plan_order(production, ordered, incremental_policies);
  enforce::SchedulePlan reference =
      enforce::check_plan_order_reference(production, ordered, reference_policies);
  ASSERT_EQ(plan.steps.size(), reference.steps.size());
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    EXPECT_EQ(plan.steps[i].change, reference.steps[i].change) << "step " << i;
    EXPECT_EQ(plan.steps[i].transient_violations, reference.steps[i].transient_violations)
        << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 7, 42, 1337, 20260704));

}  // namespace
}  // namespace heimdall
