// Tests for the ticketing system and the policy JSON front-end.
#include <gtest/gtest.h>

#include "msp/ticketing.hpp"
#include "scenarios/enterprise.hpp"
#include "spec/json_frontend.hpp"
#include "util/error.hpp"

namespace heimdall {
namespace {

using namespace heimdall::net;
using namespace heimdall::msp;

Ticket sample_ticket(int id = 0) {
  return Ticket::connectivity(id, DeviceId("h2"), DeviceId("h4"), "h2 cannot reach h4",
                              priv::TaskClass::Connectivity);
}

// ---------------------------------------------------------------- lifecycle --

TEST(Ticketing, OpenAssignsIds) {
  TicketingSystem system;
  int first = system.open(sample_ticket());
  int second = system.open(sample_ticket());
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
  EXPECT_EQ(system.size(), 2u);
  EXPECT_EQ(system.record(first).ticket.state, TicketState::Open);
}

TEST(Ticketing, ExplicitIdsRespected) {
  TicketingSystem system;
  EXPECT_EQ(system.open(sample_ticket(42)), 42);
  EXPECT_EQ(system.open(sample_ticket()), 43);  // next id advances past 42
  EXPECT_THROW(system.open(sample_ticket(42)), util::InvariantError);
}

TEST(Ticketing, FullLifecycle) {
  TicketingSystem system;
  int id = system.open(sample_ticket());
  system.assign(id, "tech-7");
  EXPECT_EQ(system.record(id).ticket.state, TicketState::InProgress);
  EXPECT_EQ(system.record(id).assignee, "tech-7");
  system.annotate(id, "reproduced in the twin");
  system.resolve(id, "wrong access VLAN on r7 Fa0/2");
  EXPECT_EQ(system.record(id).ticket.state, TicketState::Resolved);
  system.close(id);
  EXPECT_EQ(system.record(id).ticket.state, TicketState::Closed);
  EXPECT_GE(system.record(id).notes.size(), 3u);
}

TEST(Ticketing, InvalidTransitionsRejected) {
  TicketingSystem system;
  int id = system.open(sample_ticket());
  EXPECT_THROW(system.resolve(id, "not started"), util::InvariantError);
  EXPECT_THROW(system.close(id), util::InvariantError);
  system.assign(id, "tech");
  EXPECT_THROW(system.assign(id, "tech2"), util::InvariantError);
  EXPECT_THROW(system.close(id), util::InvariantError);
  EXPECT_THROW(system.assign(999, "tech"), util::NotFoundError);
  EXPECT_THROW(system.record(999), util::NotFoundError);
}

TEST(Ticketing, InStateFilters) {
  TicketingSystem system;
  int a = system.open(sample_ticket());
  int b = system.open(sample_ticket());
  system.assign(b, "tech");
  EXPECT_EQ(system.in_state(TicketState::Open), std::vector<int>{a});
  EXPECT_EQ(system.in_state(TicketState::InProgress), std::vector<int>{b});
  EXPECT_TRUE(system.in_state(TicketState::Closed).empty());
}

// --------------------------------------------------------------- monitoring --

TEST(Ticketing, MonitoringOpensTicketsForViolations) {
  Network production = scen::build_enterprise();
  spec::PolicyVerifier verifier(scen::enterprise_policies(production));
  TicketingSystem system;

  // Healthy network: nothing to report.
  EXPECT_TRUE(system.monitor(production, verifier).empty());

  // Break the VLAN: h2's reachability policies trip.
  production.device(DeviceId("r7")).interface(InterfaceId("Fa0/2")).access_vlan = 10;
  std::vector<int> opened = system.monitor(production, verifier);
  EXPECT_FALSE(opened.empty());
  for (int id : opened) {
    const TicketRecord& entry = system.record(id);
    EXPECT_EQ(entry.ticket.state, TicketState::Open);
    EXPECT_EQ(entry.ticket.task, priv::TaskClass::Connectivity);
    EXPECT_NE(entry.ticket.description.find("monitoring:"), std::string::npos);
  }

  // Re-running monitoring does not duplicate open tickets.
  EXPECT_TRUE(system.monitor(production, verifier).empty());
}

// -------------------------------------------------------------- policy JSON --

TEST(PolicyJson, RoundTripsMinedPolicies) {
  Network production = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(production);
  util::Json json = spec::policies_to_json(policies);
  std::vector<spec::Policy> reparsed = spec::policies_from_json(json);
  EXPECT_EQ(reparsed, policies);
  // And through text.
  EXPECT_EQ(spec::parse_policies_json(json.dump(2)), policies);
}

TEST(PolicyJson, ParsesAllTypes) {
  auto policies = spec::parse_policies_json(R"({
    "policies": [
      {"type": "reach", "src": "h1", "dst": "h4"},
      {"type": "isolate", "src": "h2", "dst": "h8"},
      {"type": "waypoint", "src": "h1", "dst": "h7", "via": "r9"}
    ]
  })");
  ASSERT_EQ(policies.size(), 3u);
  EXPECT_EQ(policies[0].id(), "reach(h1,h4)");
  EXPECT_EQ(policies[1].id(), "isolate(h2,h8)");
  EXPECT_EQ(policies[2].id(), "waypoint(h1,h7,r9)");
}

TEST(PolicyJson, RejectsMalformed) {
  EXPECT_THROW(spec::parse_policies_json(R"({"policies":[{"type":"teleport","src":"a","dst":"b"}]})"),
               util::ParseError);
  EXPECT_THROW(spec::parse_policies_json(R"({"policies":[{"type":"reach","src":"a"}]})"),
               util::ParseError);
  EXPECT_THROW(spec::parse_policies_json(R"({"policies":[{"type":"waypoint","src":"a","dst":"b"}]})"),
               util::ParseError);
  EXPECT_THROW(spec::parse_policies_json(R"({"policies":[{"type":"reach","src":"a","dst":"b","via":"c"}]})"),
               util::ParseError);
  EXPECT_THROW(spec::parse_policies_json(R"({"nope": []})"), util::ParseError);
}

}  // namespace
}  // namespace heimdall
