// Unit tests for the Privilege_msp DSL: actions, resources, predicates,
// evaluation semantics, JSON front-end, task-driven generation, escalation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "privilege/approval.hpp"
#include "privilege/escalation.hpp"
#include "privilege/explain.hpp"
#include "privilege/generator.hpp"
#include "privilege/json_frontend.hpp"
#include "scenarios/enterprise.hpp"
#include "twin/slice.hpp"
#include "util/error.hpp"

namespace heimdall::priv {
namespace {

using namespace heimdall::net;

// ---------------------------------------------------------------- actions --

TEST(Action, NamesRoundTrip) {
  for (Action action : all_actions()) {
    EXPECT_EQ(parse_action(to_string(action)), action);
  }
  EXPECT_THROW(parse_action("frobnicate"), util::ParseError);
}

TEST(Action, Classification) {
  EXPECT_TRUE(is_read_only(Action::ShowConfig));
  EXPECT_TRUE(is_read_only(Action::Ping));
  EXPECT_FALSE(is_read_only(Action::AclEdit));
  EXPECT_TRUE(is_mutating(Action::InterfaceDown));
  EXPECT_TRUE(is_high_impact(Action::EraseConfig));
  EXPECT_TRUE(is_high_impact(Action::ChangeSecret));
  EXPECT_FALSE(is_high_impact(Action::AclEdit));
  // Every high-impact action is mutating.
  for (Action action : all_actions()) {
    if (is_high_impact(action)) EXPECT_TRUE(is_mutating(action));
  }
}

TEST(Action, GlobMatching) {
  auto shows = actions_matching("show-*");
  EXPECT_EQ(shows.size(), 7u);
  EXPECT_EQ(actions_matching("*").size(), all_actions().size());
  EXPECT_EQ(actions_matching("ping").size(), 1u);
  EXPECT_TRUE(actions_matching("no-such-*").empty());
}

// -------------------------------------------------------------- resources --

TEST(Resource, CoversExactAndGlob) {
  Resource concrete = Resource::interface(DeviceId("r3"), InterfaceId("Gi0/1"));
  EXPECT_TRUE((Resource{"r3", ObjectKind::Interface, "Gi0/1"}).covers(concrete));
  EXPECT_TRUE((Resource{"r3", ObjectKind::Interface, "*"}).covers(concrete));
  EXPECT_TRUE((Resource{"r?", ObjectKind::Interface, "Gi0/*"}).covers(concrete));
  EXPECT_TRUE((Resource{"*", ObjectKind::Interface, ""}).covers(concrete));
  EXPECT_FALSE((Resource{"r4", ObjectKind::Interface, "*"}).covers(concrete));
  EXPECT_FALSE((Resource{"r3", ObjectKind::AclObject, "*"}).covers(concrete));
}

TEST(Resource, WholeDeviceCoversAllObjects) {
  Resource whole = Resource::whole_device(DeviceId("r3"));
  EXPECT_TRUE(whole.covers(Resource::interface(DeviceId("r3"), InterfaceId("Gi0/1"))));
  EXPECT_TRUE(whole.covers(Resource::acl(DeviceId("r3"), "WEB")));
  EXPECT_TRUE(whole.covers(Resource::secret(DeviceId("r3"), "ipsec_key")));
  EXPECT_FALSE(whole.covers(Resource::acl(DeviceId("r4"), "WEB")));
}

TEST(Resource, SpecificityOrdering) {
  Resource exact = Resource::interface(DeviceId("r3"), InterfaceId("Gi0/1"));
  Resource name_glob{"r3", ObjectKind::Interface, "*"};
  Resource device_glob{"*", ObjectKind::Interface, "Gi0/1"};
  Resource whole = Resource::whole_device(DeviceId("r3"));
  Resource any{"*", ObjectKind::Device, ""};
  EXPECT_GT(exact.specificity(), name_glob.specificity());
  EXPECT_GT(name_glob.specificity(), device_glob.specificity());
  EXPECT_GT(whole.specificity(), any.specificity());
}

TEST(Resource, ObjectKindRoundTrip) {
  for (ObjectKind kind : {ObjectKind::Device, ObjectKind::Interface, ObjectKind::AclObject,
                          ObjectKind::OspfObject, ObjectKind::VlanObject, ObjectKind::RouteObject,
                          ObjectKind::SecretObject}) {
    EXPECT_EQ(parse_object_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_object_kind("widget"), util::ParseError);
}

// ------------------------------------------------------------- evaluation --

TEST(PrivilegeSpec, DefaultDeny) {
  PrivilegeSpec spec;
  Decision decision = spec.evaluate(Action::Ping, Resource::whole_device(DeviceId("r1")));
  EXPECT_FALSE(decision.allowed);
  EXPECT_NE(decision.reason.find("default deny"), std::string::npos);
}

TEST(PrivilegeSpec, AllowThenEvaluate) {
  PrivilegeSpec spec;
  spec.allow({Action::Ping, Action::ShowConfig}, Resource::whole_device(DeviceId("r1")));
  EXPECT_TRUE(spec.allows(Action::Ping, Resource::whole_device(DeviceId("r1"))));
  EXPECT_FALSE(spec.allows(Action::Ping, Resource::whole_device(DeviceId("r2"))));
  EXPECT_FALSE(spec.allows(Action::AclEdit, Resource::whole_device(DeviceId("r1"))));
}

TEST(PrivilegeSpec, MostSpecificWins) {
  PrivilegeSpec spec;
  // Broad deny, specific allow: the allow is more specific, so it wins.
  spec.deny({Action::AclEdit}, Resource{"*", ObjectKind::AclObject, "*"});
  spec.allow({Action::AclEdit}, Resource::acl(DeviceId("r3"), "WEB"));
  EXPECT_TRUE(spec.allows(Action::AclEdit, Resource::acl(DeviceId("r3"), "WEB")));
  EXPECT_FALSE(spec.allows(Action::AclEdit, Resource::acl(DeviceId("r3"), "OTHER")));
}

TEST(PrivilegeSpec, DenyWinsSpecificityTies) {
  PrivilegeSpec spec;
  spec.allow({Action::AclEdit}, Resource::acl(DeviceId("r3"), "WEB"));
  spec.deny({Action::AclEdit}, Resource::acl(DeviceId("r3"), "WEB"));
  EXPECT_FALSE(spec.allows(Action::AclEdit, Resource::acl(DeviceId("r3"), "WEB")));

  // Order-independent: deny first, allow second.
  PrivilegeSpec reversed;
  reversed.deny({Action::AclEdit}, Resource::acl(DeviceId("r3"), "WEB"));
  reversed.allow({Action::AclEdit}, Resource::acl(DeviceId("r3"), "WEB"));
  EXPECT_FALSE(reversed.allows(Action::AclEdit, Resource::acl(DeviceId("r3"), "WEB")));
}

TEST(PrivilegeSpec, SecretDenyBeatsWholeDeviceAllow) {
  PrivilegeSpec spec;
  spec.allow({Action::ChangeSecret}, Resource::whole_device(DeviceId("r1")));
  spec.deny({Action::ChangeSecret}, Resource{"r1", ObjectKind::SecretObject, "*"});
  EXPECT_FALSE(spec.allows(Action::ChangeSecret, Resource::secret(DeviceId("r1"), "ipsec_key")));
}

TEST(PrivilegeSpec, CountAllowed) {
  PrivilegeSpec spec;
  spec.allow({Action::Ping}, Resource::whole_device(DeviceId("r1")));
  std::vector<std::pair<Action, Resource>> catalog = {
      {Action::Ping, Resource::whole_device(DeviceId("r1"))},
      {Action::Ping, Resource::whole_device(DeviceId("r2"))},
      {Action::AclEdit, Resource::whole_device(DeviceId("r1"))},
  };
  EXPECT_EQ(spec.count_allowed(catalog), 1u);
}

// ---------------------------------------------------------- JSON frontend --

TEST(JsonFrontend, ParsesAllowDeny) {
  PrivilegeSpec spec = parse_privilege_json(R"({
    "privileges": [
      {"effect": "allow", "actions": ["show-*", "ping"],
       "resource": {"device": "r3", "kind": "device"}},
      {"effect": "deny", "actions": ["*"],
       "resource": {"device": "*", "kind": "secret", "name": "*"}}
    ]
  })");
  EXPECT_TRUE(spec.allows(Action::ShowConfig, Resource::whole_device(DeviceId("r3"))));
  EXPECT_TRUE(spec.allows(Action::Ping, Resource::whole_device(DeviceId("r3"))));
  EXPECT_FALSE(spec.allows(Action::AclEdit, Resource::whole_device(DeviceId("r3"))));
  EXPECT_FALSE(spec.allows(Action::ChangeSecret, Resource::secret(DeviceId("r3"), "ipsec_key")));
}

TEST(JsonFrontend, RejectsTyposAndBadShapes) {
  EXPECT_THROW(parse_privilege_json(R"({"privileges": [
    {"effect": "allow", "actions": ["show-cofnig"],
     "resource": {"device": "r3", "kind": "device"}}]})"),
               util::ParseError);
  EXPECT_THROW(parse_privilege_json(R"({"privileges": [
    {"effect": "maybe", "actions": ["ping"],
     "resource": {"device": "r3", "kind": "device"}}]})"),
               util::ParseError);
  EXPECT_THROW(parse_privilege_json(R"({"wrong_key": []})"), util::ParseError);
  EXPECT_THROW(parse_privilege_json("not json"), util::ParseError);
}

TEST(JsonFrontend, RoundTrips) {
  Network slice = scen::build_enterprise();
  PrivilegeSpec original = generate_privileges(slice, TaskClass::Connectivity);
  PrivilegeSpec reparsed = privilege_from_json(privilege_to_json(original));
  ASSERT_EQ(reparsed.predicates().size(), original.predicates().size());
  for (std::size_t i = 0; i < original.predicates().size(); ++i) {
    EXPECT_EQ(reparsed.predicates()[i], original.predicates()[i]) << i;
  }
}

// ---------------------------------------------------------------- generator --

TEST(Generator, ReadOnlyEverywhereMutationsScoped) {
  Network production = scen::build_enterprise();
  dp::Dataplane dataplane = dp::Dataplane::compute(production);
  msp::Ticket ticket = msp::Ticket::connectivity(1, DeviceId("h2"), DeviceId("h4"), "vlan",
                                                 TaskClass::VlanIssue);
  twin::Slice slice = twin::compute_slice(production, dataplane, ticket,
                                          twin::SliceStrategy::TaskDriven);
  Network sliced = twin::materialize_slice(production, slice);
  PrivilegeSpec spec = generate_privileges(sliced, TaskClass::VlanIssue);

  // Read-only everywhere in the slice (hosts included).
  for (const Device& device : sliced.devices()) {
    EXPECT_TRUE(spec.allows(Action::ShowConfig, Resource::whole_device(device.id())))
        << device.id().str();
  }
  // VLAN mutations on slice routers; none outside the slice.
  EXPECT_TRUE(spec.allows(Action::SetSwitchport,
                          Resource::interface(DeviceId("r7"), InterfaceId("Fa0/2"))));
  EXPECT_FALSE(spec.allows(Action::SetSwitchport,
                           Resource::interface(DeviceId("r9"), InterfaceId("Gi0/0"))));
  // Out-of-class mutations denied even in the slice.
  EXPECT_FALSE(spec.allows(Action::AclEdit, Resource::acl(DeviceId("r7"), "X")));
  // High-impact: never.
  EXPECT_FALSE(spec.allows(Action::EraseConfig, Resource::whole_device(DeviceId("r7"))));
  EXPECT_FALSE(spec.allows(Action::ChangeSecret, Resource::secret(DeviceId("r7"), "ipsec_key")));
  // No mutations on hosts.
  EXPECT_FALSE(spec.allows(Action::InterfaceDown,
                           Resource::interface(DeviceId("h2"), InterfaceId("eth0"))));
  // ShowTopology works globally.
  EXPECT_TRUE(spec.allows(Action::ShowTopology, Resource{"*", ObjectKind::Device, ""}));
}

TEST(Generator, MonitoringIsPureReadOnly) {
  Network production = scen::build_enterprise();
  PrivilegeSpec spec = generate_privileges(production, TaskClass::Monitoring);
  for (const Device& device : production.devices()) {
    for (Action action : all_actions()) {
      if (is_mutating(action)) {
        EXPECT_FALSE(spec.allows(action, Resource::whole_device(device.id())))
            << to_string(action) << " on " << device.id().str();
      }
    }
  }
}

TEST(Generator, TaskClassesGrantTheirTools) {
  Network production = scen::build_enterprise();
  struct Expectation {
    TaskClass task;
    Action granted;
    Action denied;
  };
  for (const Expectation& expectation :
       {Expectation{TaskClass::OspfIssue, Action::OspfNetworkEdit, Action::SetSwitchport},
        Expectation{TaskClass::AclChange, Action::AclEdit, Action::OspfNetworkEdit},
        Expectation{TaskClass::IspReconfig, Action::StaticRouteAdd, Action::AclDelete}}) {
    PrivilegeSpec spec = generate_privileges(production, expectation.task);
    EXPECT_TRUE(spec.allows(expectation.granted, Resource::whole_device(DeviceId("r1"))))
        << to_string(expectation.task);
    EXPECT_FALSE(spec.allows(expectation.denied, Resource::whole_device(DeviceId("r1"))))
        << to_string(expectation.task);
  }
}

// ---------------------------------------------------------------- explainer --

TEST(Explain, EveryActionHasAPhrase) {
  for (Action action : all_actions()) {
    EXPECT_FALSE(human_phrase(action).empty());
    // Phrases are English sentences, not the canonical enum names.
    EXPECT_NE(human_phrase(action), to_string(action));
    EXPECT_NE(human_phrase(action).find(' '), std::string::npos) << to_string(action);
  }
}

TEST(Explain, ResourcePhrases) {
  EXPECT_EQ(human_phrase(Resource::whole_device(DeviceId("r3"))), "device r3");
  EXPECT_EQ(human_phrase(Resource{"*", ObjectKind::Device, ""}), "any device");
  EXPECT_EQ(human_phrase(Resource::acl(DeviceId("r9"), "DMZ_IN")), "access-list DMZ_IN on device r9");
  EXPECT_EQ(human_phrase(Resource{"r9", ObjectKind::SecretObject, "*"}),
            "any credential on device r9");
  EXPECT_EQ(human_phrase(Resource::interface(DeviceId("r7"), InterfaceId("Fa0/2"))),
            "interface Fa0/2 on device r7");
}

TEST(Explain, PredicateSentences) {
  Predicate allow{Effect::Allow, {Action::Ping, Action::ShowRoutes},
                  Resource::whole_device(DeviceId("r5"))};
  std::string sentence = explain_predicate(allow);
  EXPECT_NE(sentence.find("MAY run connectivity tests and view the routing table"),
            std::string::npos)
      << sentence;
  Predicate deny{Effect::Deny, {Action::ChangeSecret}, Resource{"r5", ObjectKind::SecretObject, "*"}};
  EXPECT_NE(explain_predicate(deny).find("MAY NOT change credentials"), std::string::npos);
}

TEST(Explain, SpecSummaryGroupsDevicesAndEndsWithDefaultDeny) {
  Network slice = scen::build_enterprise();
  PrivilegeSpec spec = generate_privileges(slice, TaskClass::VlanIssue);
  std::string summary = explain_privileges(spec);
  EXPECT_NE(summary.find("The technician:"), std::string::npos);
  EXPECT_NE(summary.find("denied by default"), std::string::npos);
  // Grouping: the per-device read-only grants collapse into one line
  // listing several devices rather than one bullet per device.
  EXPECT_NE(summary.find(" and "), std::string::npos);
  EXPECT_NE(summary.find("MAY NOT"), std::string::npos);
  // No raw enum names leak through.
  EXPECT_EQ(summary.find("show-config"), std::string::npos);
}

// --------------------------------------------------------------- escalation --

TEST(Escalation, VerdictMatrix) {
  EscalationPolicy policy(TaskClass::OspfIssue, {DeviceId("r5"), DeviceId("r8")});

  // Read-only in slice: auto.
  EXPECT_EQ(policy.assess({Action::ShowRoutes, Resource::whole_device(DeviceId("r5")), ""}).verdict,
            EscalationVerdict::AutoGranted);
  // Task-compatible mutation in slice: granted.
  EXPECT_EQ(policy.assess({Action::SetOspfCost,
                           Resource::interface(DeviceId("r5"), InterfaceId("Gi0/3")), ""})
                .verdict,
            EscalationVerdict::Granted);
  // Out-of-class mutation in slice: admin approval.
  EXPECT_EQ(policy.assess({Action::AclEdit, Resource::acl(DeviceId("r5"), "X"), ""}).verdict,
            EscalationVerdict::RequiresAdmin);
  // Outside the slice: rejected.
  EXPECT_EQ(policy.assess({Action::ShowRoutes, Resource::whole_device(DeviceId("r9")), ""}).verdict,
            EscalationVerdict::Rejected);
  // High impact: rejected.
  EXPECT_EQ(policy.assess({Action::Reboot, Resource::whole_device(DeviceId("r5")), ""}).verdict,
            EscalationVerdict::Rejected);
  // Secrets: rejected.
  EXPECT_EQ(
      policy.assess({Action::BindAcl, Resource::secret(DeviceId("r5"), "ipsec_key"), ""}).verdict,
      EscalationVerdict::Rejected);
  // Glob device: rejected (cannot escalate onto patterns).
  EXPECT_EQ(policy.assess({Action::ShowRoutes, Resource{"*", ObjectKind::Device, ""}, ""}).verdict,
            EscalationVerdict::Rejected);
}

TEST(Escalation, ApplyExtendsSpec) {
  EscalationPolicy policy(TaskClass::OspfIssue, {DeviceId("r5")});
  PrivilegeSpec spec;

  EscalationRequest granted{Action::SetOspfCost, Resource::whole_device(DeviceId("r5")),
                            "need to tune costs"};
  EXPECT_EQ(policy.apply(spec, granted).verdict, EscalationVerdict::Granted);
  EXPECT_TRUE(spec.allows(Action::SetOspfCost, Resource::whole_device(DeviceId("r5"))));

  EscalationRequest admin_needed{Action::AclEdit, Resource::acl(DeviceId("r5"), "X"), "why not"};
  EXPECT_EQ(policy.apply(spec, admin_needed, /*admin_approved=*/false).verdict,
            EscalationVerdict::RequiresAdmin);
  EXPECT_FALSE(spec.allows(Action::AclEdit, Resource::acl(DeviceId("r5"), "X")));
  EXPECT_EQ(policy.apply(spec, admin_needed, /*admin_approved=*/true).verdict,
            EscalationVerdict::RequiresAdmin);
  EXPECT_TRUE(spec.allows(Action::AclEdit, Resource::acl(DeviceId("r5"), "X")));

  EscalationRequest rejected{Action::EraseConfig, Resource::whole_device(DeviceId("r5")), "oops"};
  EXPECT_EQ(policy.apply(spec, rejected, /*admin_approved=*/true).verdict,
            EscalationVerdict::Rejected);
  EXPECT_FALSE(spec.allows(Action::EraseConfig, Resource::whole_device(DeviceId("r5"))));
}

// Regression: an escalation request whose resource carries a glob — or an
// empty name where the kind identifies objects by name — used to assess as
// if it named one concrete object, silently widening the grant to every
// match. Both shapes must be rejected outright.
TEST(Escalation, RejectsGlobResourceNames) {
  EscalationPolicy policy(TaskClass::AclChange, {DeviceId("r5")});
  EscalationResult glob_name =
      policy.assess({Action::AclEdit, Resource::acl(DeviceId("r5"), "EDGE*"), "all the edges"});
  EXPECT_EQ(glob_name.verdict, EscalationVerdict::Rejected);
  EXPECT_NE(glob_name.reason.find("does not name a concrete object"), std::string::npos);

  EscalationResult glob_iface = policy.assess(
      {Action::InterfaceUp, Resource::interface(DeviceId("r5"), InterfaceId("Gi0/?")), "any"});
  EXPECT_EQ(glob_iface.verdict, EscalationVerdict::Rejected);
}

TEST(Escalation, RejectsEmptyNamedObjectResources) {
  EscalationPolicy policy(TaskClass::AclChange, {DeviceId("r5")});
  EscalationResult empty_acl =
      policy.assess({Action::AclEdit, Resource{"r5", ObjectKind::AclObject, ""}, "which acl?"});
  EXPECT_EQ(empty_acl.verdict, EscalationVerdict::Rejected);
  EXPECT_NE(empty_acl.reason.find("does not name a concrete object"), std::string::npos);

  // Kinds that do not name sub-objects (whole device, ospf, the route
  // table) legitimately carry empty names and must still assess normally:
  // an out-of-class route mutation is admin-gated, not rejected.
  EXPECT_EQ(policy.assess({Action::StaticRouteAdd, Resource::routes(DeviceId("r5")), "null-route"})
                .verdict,
            EscalationVerdict::RequiresAdmin);
}

// --------------------------------------------------------------- approvals --

Approval signed_approval(const std::string& principal, PrincipalRole role,
                         const std::string& subject) {
  return {principal, role, subject, "sig:" + principal + ":" + subject};
}

// The test stand-in for the enclave: a signature is attested iff it is the
// one signed_approval would have minted.
bool fake_attested(const Approval& approval) {
  return approval.signature == "sig:" + approval.principal + ":" + approval.subject;
}

TEST(Approvals, JsonRoundTrip) {
  ApprovalSet set;
  set.required = 2;
  set.approvals = {signed_approval("customer-admin", PrincipalRole::Customer, "hash-1"),
                   signed_approval("msp-supervisor", PrincipalRole::Msp, "hash-1")};
  ApprovalSet back = approval_set_from_json(approval_set_to_json(set));
  EXPECT_EQ(back, set);

  ApprovalSet empty;
  EXPECT_EQ(approval_set_from_json(approval_set_to_json(empty)), empty);

  EXPECT_THROW(approval_set_from_json(util::Json::parse(R"({"approvals": []})")),
               util::ParseError);
  EXPECT_THROW(approval_set_from_json(util::Json::parse(R"({"required": -1, "approvals": []})")),
               util::ParseError);
  EXPECT_THROW(approval_set_from_json(util::Json::parse(
                   R"({"required": 1, "approvals": [{"principal": "a"}]})")),
               util::ParseError);
  EXPECT_THROW(
      approval_set_from_json(util::Json::parse(
          R"({"required": 1,
              "approvals": [{"principal": "a", "role": "root", "subject": "s", "signature": "x"}]})")),
      util::ParseError);
}

TEST(Approvals, CheckHappyPath) {
  ApprovalSet set;
  set.required = 2;
  set.approvals = {signed_approval("customer-admin", PrincipalRole::Customer, "hash-1"),
                   signed_approval("msp-supervisor", PrincipalRole::Msp, "hash-1")};
  ApprovalCheck check = check_approvals(set, "technician", "hash-1", 2, fake_attested);
  EXPECT_TRUE(check.satisfied);
  EXPECT_EQ(check.valid, 2u);
  EXPECT_TRUE(check.problems.empty());
  EXPECT_EQ(check.summary(), "satisfied (2 valid approvals)");
}

TEST(Approvals, CheckRejectsDowngradeSelfApprovalAndDuplicates) {
  const std::string subject = "hash-1";
  // m=1 downgrade: even a genuine signature cannot lower the policy floor.
  ApprovalSet downgraded;
  downgraded.required = 1;
  downgraded.approvals = {signed_approval("customer-admin", PrincipalRole::Customer, subject)};
  ApprovalCheck check = check_approvals(downgraded, "technician", subject, 2, fake_attested);
  EXPECT_FALSE(check.satisfied);
  EXPECT_NE(check.summary().find("m-of-n downgrade"), std::string::npos);

  // Self-approval: the requester's own signature never counts.
  ApprovalSet selfie;
  selfie.required = 2;
  selfie.approvals = {signed_approval("technician", PrincipalRole::Customer, subject),
                      signed_approval("msp-supervisor", PrincipalRole::Msp, subject)};
  check = check_approvals(selfie, "technician", subject, 2, fake_attested);
  EXPECT_FALSE(check.satisfied);
  EXPECT_EQ(check.valid, 1u);
  EXPECT_NE(check.summary().find("self-approval by technician"), std::string::npos);

  // Duplicate principal: the same signer twice is one approval.
  ApprovalSet duplicated;
  duplicated.required = 2;
  duplicated.approvals = {signed_approval("customer-admin", PrincipalRole::Customer, subject),
                          signed_approval("customer-admin", PrincipalRole::Customer, subject)};
  check = check_approvals(duplicated, "technician", subject, 2, fake_attested);
  EXPECT_FALSE(check.satisfied);
  EXPECT_EQ(check.valid, 1u);
  EXPECT_NE(check.summary().find("duplicate approval"), std::string::npos);
}

TEST(Approvals, CheckRejectsWrongSubjectBadSignatureAndMissingCustomer) {
  const std::string subject = "hash-1";
  // Wrong subject: an approval of some other ticket's content is worthless.
  ApprovalSet stale;
  stale.required = 2;
  stale.approvals = {signed_approval("customer-admin", PrincipalRole::Customer, "hash-0"),
                     signed_approval("msp-supervisor", PrincipalRole::Msp, subject)};
  ApprovalCheck check = check_approvals(stale, "technician", subject, 2, fake_attested);
  EXPECT_FALSE(check.satisfied);
  EXPECT_NE(check.summary().find("covers a different subject"), std::string::npos);

  // Forged signature: attestation fails.
  ApprovalSet forged;
  forged.required = 2;
  forged.approvals = {signed_approval("customer-admin", PrincipalRole::Customer, subject),
                      {"msp-supervisor", PrincipalRole::Msp, subject, "deadbeef"}};
  check = check_approvals(forged, "technician", subject, 2, fake_attested);
  EXPECT_FALSE(check.satisfied);
  EXPECT_NE(check.summary().find("failed attestation"), std::string::npos);

  // Two valid MSP-side approvals still fail without a customer principal.
  ApprovalSet msp_only;
  msp_only.required = 2;
  msp_only.approvals = {signed_approval("msp-supervisor", PrincipalRole::Msp, subject),
                        signed_approval("msp-oncall", PrincipalRole::Msp, subject)};
  check = check_approvals(msp_only, "technician", subject, 2, fake_attested);
  EXPECT_FALSE(check.satisfied);
  EXPECT_EQ(check.valid, 2u);
  EXPECT_NE(check.summary().find("no customer-side approval"), std::string::npos);
}

// --------------------------------------------------------------- mediation --

TEST(Mediation, DisjointFootprintsAllProceed) {
  std::vector<PendingApproval> pending = {
      {"alice", Resource::acl(DeviceId("r1"), "EDGE1"), "h1", {}},
      {"bob", Resource::acl(DeviceId("r2"), "EDGE2"), "h2", {}},
  };
  std::vector<MediationResult> results = mediate_conflicts(pending, {1, 1});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].verdict, MediationVerdict::Proceed);
  EXPECT_EQ(results[1].verdict, MediationVerdict::Proceed);
  EXPECT_EQ(results[0].reason, "mediation: no conflicting request");
}

TEST(Mediation, StrongestApprovalSetWinsOverlap) {
  // bob's whole-device footprint covers alice's ACL: one component. bob
  // holds more valid approvals, so bob proceeds and alice defers.
  std::vector<PendingApproval> pending = {
      {"alice", Resource::acl(DeviceId("r1"), "EDGE1"), "h1", {}},
      {"bob", Resource::whole_device(DeviceId("r1")), "h2", {}},
  };
  std::vector<MediationResult> results = mediate_conflicts(pending, {1, 3});
  EXPECT_EQ(results[0].verdict, MediationVerdict::Deferred);
  EXPECT_NE(results[0].reason.find("overlaps bob's request"), std::string::npos);
  EXPECT_EQ(results[1].verdict, MediationVerdict::Proceed);

  EXPECT_THROW(mediate_conflicts(pending, {1}), util::Error);
}

TEST(Mediation, DeterministicAcrossArrivalOrder) {
  // Two overlapping groups plus one standalone request; a tie inside the
  // second group exercises the canonical-key tie-break. Whatever order the
  // requests arrive in, each requester gets the same verdict.
  std::vector<PendingApproval> base = {
      {"alice", Resource::acl(DeviceId("r1"), "EDGE1"), "h1", {}},
      {"bob", Resource::whole_device(DeviceId("r1")), "h2", {}},
      {"carol", Resource::ospf(DeviceId("r2")), "h3", {}},
      {"dave", Resource::whole_device(DeviceId("r3")), "h4", {}},
      {"erin", Resource::whole_device(DeviceId("r3")), "h5", {}},
  };
  std::vector<std::size_t> base_counts = {1, 3, 2, 2, 2};

  std::map<std::string, MediationVerdict> reference;
  {
    std::vector<MediationResult> results = mediate_conflicts(base, base_counts);
    for (std::size_t i = 0; i < base.size(); ++i)
      reference[base[i].requester] = results[i].verdict;
  }
  EXPECT_EQ(reference["bob"], MediationVerdict::Proceed);
  EXPECT_EQ(reference["alice"], MediationVerdict::Deferred);
  EXPECT_EQ(reference["carol"], MediationVerdict::Proceed);
  // dave vs erin tie on approvals: the smaller (subject, requester,
  // resource) key — dave's h4 — wins deterministically.
  EXPECT_EQ(reference["dave"], MediationVerdict::Proceed);
  EXPECT_EQ(reference["erin"], MediationVerdict::Deferred);

  std::vector<std::size_t> order(base.size());
  std::iota(order.begin(), order.end(), 0);
  do {
    std::vector<PendingApproval> pending;
    std::vector<std::size_t> counts;
    for (std::size_t index : order) {
      pending.push_back(base[index]);
      counts.push_back(base_counts[index]);
    }
    std::vector<MediationResult> results = mediate_conflicts(pending, counts);
    for (std::size_t i = 0; i < pending.size(); ++i)
      EXPECT_EQ(results[i].verdict, reference[pending[i].requester])
          << "arrival order changed the verdict for " << pending[i].requester;
  } while (std::next_permutation(order.begin(), order.end()));
}

}  // namespace
}  // namespace heimdall::priv
