// Fabric generator + sharded all-pairs reachability tests.
//
// The load-bearing property: ShardedReachability (one representative trace
// per forwarding-equivalence class pair) must agree pair-for-pair — same
// disposition, same hop path, same counts, same diffs — with the dense
// ReachabilityMatrix computed on the identical plane, across clean and
// misconfigured networks, every FIB stride, and incremental recomputes.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "dataplane/compiled.hpp"
#include "dataplane/sharded.hpp"
#include "msp/workflow.hpp"
#include "obs/metrics.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/fabric.hpp"
#include "scenarios/university.hpp"
#include "spec/verify.hpp"
#include "util/thread_pool.hpp"

namespace heimdall::scen {
namespace {

using namespace heimdall::net;

dp::CompiledPlane compile(const Network& network, const dp::Dataplane& dataplane,
                          unsigned stride = 0) {
  dp::CompiledPlane::CompileOptions options;
  options.fib_stride = stride;
  return dp::CompiledPlane::compile(network, dataplane, options);
}

/// Dense matrix is the oracle: every ordered pair must agree exactly.
void expect_matches_dense(const dp::ReachabilityMatrix& dense,
                          const dp::ShardedReachability& sharded, const std::string& context) {
  ASSERT_EQ(dense.hosts().size(), sharded.hosts().size()) << context;
  EXPECT_EQ(dense.reachable_count(), sharded.reachable_count()) << context;
  EXPECT_EQ(dense.total_count(), sharded.total_count()) << context;
  for (const dp::PairReachability& expected : dense.pairs()) {
    const std::string pair_context =
        context + ": " + expected.src.str() + " -> " + expected.dst.str();
    ASSERT_TRUE(sharded.has_pair(expected.src, expected.dst)) << pair_context;
    EXPECT_EQ(expected.disposition, sharded.disposition(expected.src, expected.dst))
        << pair_context;
    EXPECT_EQ(expected.path, sharded.path(expected.src, expected.dst)) << pair_context;
  }
}

void expect_sharded_identical(const dp::ShardedReachability& a, const dp::ShardedReachability& b,
                              const std::string& context) {
  ASSERT_EQ(a.hosts(), b.hosts()) << context;
  EXPECT_EQ(a.reachable_count(), b.reachable_count()) << context;
  EXPECT_EQ(a.class_count(), b.class_count()) << context;
  for (const DeviceId& src : a.hosts()) {
    for (const DeviceId& dst : a.hosts()) {
      if (src == dst) continue;
      EXPECT_EQ(a.disposition(src, dst), b.disposition(src, dst))
          << context << ": " << src.str() << " -> " << dst.str();
      EXPECT_EQ(a.path(src, dst), b.path(src, dst))
          << context << ": " << src.str() << " -> " << dst.str();
    }
  }
}

// ------------------------------------------------------------- generator --

TEST(Fabric, InfoMatchesConstruction) {
  for (unsigned k : {4u, 6u}) {
    FabricOptions options;
    options.k = k;
    const FabricInfo info = fabric_info(options);
    Network network = build_fabric(options);
    EXPECT_EQ(network.count(DeviceKind::Router), info.routers) << "k=" << k;
    EXPECT_EQ(network.count(DeviceKind::Host), info.hosts) << "k=" << k;
    EXPECT_EQ(network.topology().links().size(), info.links) << "k=" << k;
    EXPECT_NO_THROW(network.validate());
  }
}

TEST(Fabric, SizesMatchFatTreeFormulas) {
  const FabricInfo k4 = fabric_info(FabricOptions{4, 2, 2});
  EXPECT_EQ(k4.routers, 20u);  // 4 cores + 8 agg + 8 edge
  EXPECT_EQ(k4.hosts, 32u);
  const FabricInfo k8 = fabric_info(FabricOptions{8, 2, 2});
  EXPECT_EQ(k8.routers, 80u);  // 16 cores + 32 agg + 32 edge
  EXPECT_EQ(k8.hosts, 128u);
  // The acceptance bar: a k=8 fabric stands in for 10k+ host addresses.
  EXPECT_GE(k8.host_addresses, 10000u);
}

TEST(Fabric, BuilderIsDeterministic) {
  EXPECT_EQ(build_fabric(), build_fabric());
  FabricOptions options;
  options.k = 6;
  analysis::Engine engine;
  EXPECT_EQ(engine.fingerprint(build_fabric(options)), engine.fingerprint(build_fabric(options)));
}

TEST(Fabric, CleanFabricIsFullyReachable) {
  Network network = build_fabric();
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  dp::ReachabilityMatrix dense = dp::ReachabilityMatrix::compute(compile(network, dataplane));
  EXPECT_EQ(dense.reachable_count(), dense.total_count());
}

TEST(Fabric, PoliciesHoldOnCleanFabric) {
  Network network = build_fabric();
  std::vector<spec::Policy> policies = fabric_policies();
  EXPECT_GE(policies.size(), 6u);
  spec::PolicyVerifier verifier(policies);
  EXPECT_TRUE(verifier.verify_network(network).ok());
}

TEST(Fabric, ProbeGaugesPublished) {
  Network network = build_fabric();
  fabric_probe(network);
  obs::Registry& registry = obs::Registry::global();
  EXPECT_EQ(registry.gauge("scenario.routers").value(), 20);
  EXPECT_EQ(registry.gauge("scenario.hosts").value(), 32);
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  dp::ShardedReachability sharded =
      dp::ShardedReachability::compute(compile(network, dataplane));
  EXPECT_EQ(registry.gauge("matrix.bytes").value(), static_cast<std::int64_t>(sharded.bytes()));
  EXPECT_EQ(registry.gauge("matrix.equiv_classes").value(),
            static_cast<std::int64_t>(sharded.class_count()));
}

// ----------------------------------------------------------- compression --

TEST(Sharded, FabricCompressesToSubnetClasses) {
  Network network = build_fabric();  // k=4: 8 edges x 2 subnets, 2 hosts each
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  dp::ShardedReachability sharded =
      dp::ShardedReachability::compute(compile(network, dataplane));
  // Hosts sharing a (leaf, subnet) are forwarding-equivalent: 16 classes
  // cover 32 hosts, and every ordered class pair (incl. the two-member
  // diagonals) gets exactly one representative trace.
  EXPECT_EQ(sharded.class_count(), 16u);
  EXPECT_EQ(sharded.hosts().size(), 32u);
  EXPECT_EQ(sharded.traced_pairs(), 16u * 16u);
  // The compressed store must be far below the dense matrix's footprint.
  dp::ReachabilityMatrix dense = dp::ReachabilityMatrix::compute(compile(network, dataplane));
  EXPECT_LT(sharded.bytes(), dense.bytes() / 2);
}

// ------------------------------------------------- dense-oracle property --

struct OracleCase {
  std::string name;
  unsigned stride;
};

class ShardedOracleTest : public ::testing::TestWithParam<OracleCase> {
 protected:
  Network network() const {
    const std::string& name = GetParam().name;
    if (name == "enterprise") return build_enterprise();
    if (name == "university") return build_university();
    return build_fabric();
  }
};

TEST_P(ShardedOracleTest, MatchesDense) {
  Network net = network();
  dp::Dataplane dataplane = dp::Dataplane::compute(net);
  dp::CompiledPlane plane = compile(net, dataplane, GetParam().stride);
  dp::ReachabilityMatrix dense = dp::ReachabilityMatrix::compute(plane);
  dp::ShardedReachability sharded = dp::ShardedReachability::compute(plane);
  expect_matches_dense(dense, sharded, GetParam().name);
}

TEST_P(ShardedOracleTest, ParallelMatchesSerial) {
  Network net = network();
  dp::Dataplane dataplane = dp::Dataplane::compute(net);
  dp::CompiledPlane plane = compile(net, dataplane, GetParam().stride);
  dp::ShardedReachability serial = dp::ShardedReachability::compute(plane);
  util::ThreadPool pool(4);
  dp::ShardOptions options;
  options.pool = &pool;
  dp::ShardedReachability parallel = dp::ShardedReachability::compute(plane, options);
  expect_sharded_identical(serial, parallel, GetParam().name + " parallel");
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ShardedOracleTest,
    ::testing::Values(OracleCase{"enterprise", 0}, OracleCase{"enterprise", 16},
                      OracleCase{"enterprise", 24}, OracleCase{"university", 0},
                      OracleCase{"university", 16}, OracleCase{"university", 24},
                      OracleCase{"fabric", 0}, OracleCase{"fabric", 16},
                      OracleCase{"fabric", 24}),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      return info.param.name + "_stride" + std::to_string(info.param.stride);
    });

TEST(Sharded, MatchesDenseUnderInjectedIssues) {
  for (const IssueSpec& issue : fabric_issues()) {
    Network network = build_fabric();
    issue.inject(network);
    dp::Dataplane dataplane = dp::Dataplane::compute(network);
    dp::CompiledPlane plane = compile(network, dataplane);
    dp::ReachabilityMatrix dense = dp::ReachabilityMatrix::compute(plane);
    dp::ShardedReachability sharded = dp::ShardedReachability::compute(plane);
    expect_matches_dense(dense, sharded, "issue " + issue.key);
    // The injection must actually break the ticket pair.
    EXPECT_FALSE(sharded.reachable(issue.ticket.affected[0], issue.ticket.affected[1])) << issue.key;
  }
}

TEST(Sharded, DiffMatchesDenseDiff) {
  Network clean = build_fabric();
  Network broken = build_fabric();
  const IssueSpec issue = fabric_issues().front();  // acl
  issue.inject(broken);

  dp::Dataplane clean_plane = dp::Dataplane::compute(clean);
  dp::Dataplane broken_plane = dp::Dataplane::compute(broken);
  dp::ReachabilityMatrix dense_before = dp::ReachabilityMatrix::compute(compile(clean, clean_plane));
  dp::ReachabilityMatrix dense_after =
      dp::ReachabilityMatrix::compute(compile(broken, broken_plane));
  dp::ShardedReachability sharded_before =
      dp::ShardedReachability::compute(compile(clean, clean_plane));
  dp::ShardedReachability sharded_after =
      dp::ShardedReachability::compute(compile(broken, broken_plane));

  auto dense_diff = dp::ReachabilityMatrix::diff(dense_before, dense_after);
  ASSERT_FALSE(dense_diff.empty());
  EXPECT_EQ(dense_diff, dp::ShardedReachability::diff(sharded_before, sharded_after));
  EXPECT_EQ(dense_diff, dp::diff_views(sharded_before, sharded_after));
  EXPECT_EQ(dense_diff, dp::diff_views(dense_before, sharded_after));
}

// --------------------------------------------------------------- recompute --

TEST(Sharded, RecomputeMatchesFreshAfterAclInjection) {
  Network network = build_fabric();
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  dp::ShardedReachability base = dp::ShardedReachability::compute(compile(network, dataplane));

  const IssueSpec issue = fabric_issues().front();  // acl: device-local on p1-e0
  issue.inject(network);
  dp::Dataplane changed_plane = dp::Dataplane::compute(network);
  dp::CompiledPlane plane = compile(network, changed_plane);

  std::size_t retraced = 0;
  dp::ShardedReachability incremental =
      dp::ShardedReachability::recompute(plane, base, {issue.root_cause}, {}, &retraced);
  dp::ShardedReachability fresh = dp::ShardedReachability::compute(plane);
  expect_sharded_identical(fresh, incremental, "acl recompute");
  // Only class pairs whose representative path crossed p1-e0 re-trace.
  EXPECT_GT(retraced, 0u);
  EXPECT_LT(retraced, base.traced_pairs());
  // And the oracle agrees with the incremental result.
  expect_matches_dense(dp::ReachabilityMatrix::compute(plane), incremental, "acl recompute dense");
}

TEST(Sharded, RecomputeFallsBackWhenPartitionMoves) {
  Network network = build_fabric();
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  dp::ShardedReachability base = dp::ShardedReachability::compute(compile(network, dataplane));

  // The vlan issue moves a host's L2 segment, which changes its class
  // signature — the partition shifts and recompute must fall back to a full
  // compute (retraced == fresh traced_pairs) while staying correct.
  const IssueSpec issue = fabric_issues()[2];
  ASSERT_EQ(issue.key, "vlan");
  issue.inject(network);
  dp::Dataplane changed_plane = dp::Dataplane::compute(network);
  dp::CompiledPlane plane = compile(network, changed_plane);

  std::size_t retraced = 0;
  dp::ShardedReachability incremental =
      dp::ShardedReachability::recompute(plane, base, {issue.root_cause}, {}, &retraced);
  dp::ShardedReachability fresh = dp::ShardedReachability::compute(plane);
  EXPECT_EQ(retraced, fresh.traced_pairs());
  expect_sharded_identical(fresh, incremental, "vlan recompute");
  expect_matches_dense(dp::ReachabilityMatrix::compute(plane), incremental, "vlan recompute dense");
}

// ------------------------------------------------------------ engine modes --

TEST(EngineMatrixMode, ExplicitShardedProducesShardedSnapshot) {
  analysis::Options options;
  options.matrix_mode = analysis::MatrixMode::Sharded;
  analysis::Engine engine(options);
  analysis::Snapshot snapshot = engine.analyze(build_enterprise());
  EXPECT_EQ(snapshot.reachability, nullptr);
  ASSERT_NE(snapshot.sharded, nullptr);
  EXPECT_EQ(snapshot.view(), snapshot.sharded.get());
  EXPECT_EQ(snapshot.retraced_pairs, nullptr);
}

TEST(EngineMatrixMode, AutoFollowsHostThreshold) {
  analysis::Options sharded_options;
  sharded_options.sharded_host_threshold = 1;
  analysis::Engine crossing(sharded_options);
  analysis::Snapshot compressed = crossing.analyze(build_enterprise());
  EXPECT_NE(compressed.sharded, nullptr);
  EXPECT_EQ(compressed.reachability, nullptr);

  analysis::Engine below;  // default threshold 512 >> 9 enterprise hosts
  analysis::Snapshot dense = below.analyze(build_enterprise());
  EXPECT_EQ(dense.sharded, nullptr);
  ASSERT_NE(dense.reachability, nullptr);
  EXPECT_EQ(dense.view(), dense.reachability.get());

  // Both representations answer identically through the view.
  expect_matches_dense(*dense.reachability, *compressed.sharded, "auto threshold");
}

TEST(EngineMatrixMode, ShardedSnapshotsMemoize) {
  analysis::Options options;
  options.matrix_mode = analysis::MatrixMode::Sharded;
  analysis::Engine engine(options);
  Network network = build_fabric();
  analysis::Snapshot first = engine.analyze(network);
  analysis::Snapshot second = engine.analyze(network);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(first.sharded.get(), second.sharded.get());
}

TEST(EngineMatrixMode, IncrementalShardedMatchesFreshDense) {
  analysis::Options options;
  options.matrix_mode = analysis::MatrixMode::Sharded;
  analysis::Engine engine(options);
  Network network = build_fabric();
  analysis::Snapshot base = engine.analyze(network);

  // Apply the blackhole-static-route issue both as a mutation and as the
  // matching semantic change, driving the engine's FibLocal incremental path.
  const IssueSpec issue = fabric_issues()[1];
  ASSERT_EQ(issue.key, "route");
  issue.inject(network);
  const Device& edge = network.device(issue.root_cause);
  cfg::ConfigChange change{issue.root_cause,
                           cfg::StaticRouteAdd{edge.static_routes().back()}};
  analysis::Snapshot after = engine.analyze(network, base, {change});
  EXPECT_EQ(engine.stats().incremental_recomputes, 1u);
  ASSERT_NE(after.sharded, nullptr);
  EXPECT_EQ(after.retraced_pairs, nullptr);  // class pairs are not dense indices

  analysis::Engine fresh;  // dense oracle
  analysis::Snapshot reference = fresh.analyze(network);
  expect_matches_dense(*reference.reachability, *after.sharded, "incremental route");
  EXPECT_FALSE(after.sharded->reachable(issue.ticket.affected[0], issue.ticket.affected[1]));
}

// ------------------------------------------------------------ verification --

TEST(ShardedVerify, ReportsMatchDense) {
  Network network = build_fabric();
  const IssueSpec issue = fabric_issues().front();
  issue.inject(network);
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  dp::CompiledPlane plane = compile(network, dataplane);
  dp::ReachabilityMatrix dense = dp::ReachabilityMatrix::compute(plane);
  dp::ShardedReachability sharded = dp::ShardedReachability::compute(plane);

  spec::PolicyVerifier verifier(fabric_policies());
  spec::VerificationReport dense_report = verifier.verify(dense);
  spec::VerificationReport sharded_report = verifier.verify(sharded);
  EXPECT_FALSE(dense_report.ok());
  EXPECT_EQ(dense_report.checked, sharded_report.checked);
  EXPECT_EQ(dense_report.violated_ids(), sharded_report.violated_ids());
}

TEST(ShardedVerify, IncrementalFallsBackOnShardedSnapshots) {
  analysis::Options options;
  options.matrix_mode = analysis::MatrixMode::Sharded;
  analysis::Engine engine(options);
  Network network = build_fabric();
  analysis::Snapshot base = engine.analyze(network);

  spec::PolicyVerifier verifier(fabric_policies());
  spec::VerificationReport base_report = verifier.verify(*base.view());
  EXPECT_TRUE(base_report.ok());

  const IssueSpec issue = fabric_issues().front();
  issue.inject(network);
  cfg::ConfigChange change{
      issue.root_cause,
      cfg::InterfaceAclBindingChange{InterfaceId("Gi0/0"), cfg::AclDirection::In, "",
                                     "EDGE_PROT_IN"}};
  analysis::Snapshot after = engine.analyze(network, base, {change});
  spec::VerificationReport incremental = verifier.verify_incremental(after, base_report);
  spec::VerificationReport full = verifier.verify(*after.view());
  EXPECT_EQ(incremental.checked, full.checked);
  EXPECT_EQ(incremental.violated_ids(), full.violated_ids());
  EXPECT_FALSE(full.ok());
}

// ------------------------------------------------------- issue workflows --

class FabricIssueTest : public ::testing::TestWithParam<std::string> {
 protected:
  IssueSpec issue() const {
    for (IssueSpec& candidate : issues_) {
      if (candidate.key == GetParam()) return candidate;
    }
    throw std::runtime_error("no such fabric issue");
  }

 private:
  mutable std::vector<IssueSpec> issues_ = fabric_issues();
};

TEST_P(FabricIssueTest, InjectBreaksResolvedPair) {
  Network production = build_fabric();
  IssueSpec spec = issue();
  EXPECT_TRUE(spec.resolved(production));
  EXPECT_TRUE(production.has_device(spec.root_cause));
  spec.inject(production);
  EXPECT_FALSE(spec.resolved(production)) << "injection must break the pair";
  EXPECT_NO_THROW(production.validate());
}

TEST_P(FabricIssueTest, FixScriptRepairsViaHeimdall) {
  Network production = build_fabric();
  IssueSpec spec = issue();
  spec.inject(production);

  enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(fabric_policies()),
                                   enforce::SimulatedEnclave("v1", "hw"));
  msp::Technician technician;
  msp::WorkflowResult result = msp::run_heimdall_workflow(
      production, enforcer, spec.ticket, spec.fix_script, technician, spec.resolved);
  EXPECT_TRUE(result.changes_applied);
  EXPECT_TRUE(result.issue_resolved);
  EXPECT_EQ(result.commands_denied, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFabricIssues, FabricIssueTest,
                         ::testing::Values("acl", "route", "vlan"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace heimdall::scen
