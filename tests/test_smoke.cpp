// End-to-end smoke tests: both scenario networks build, converge, and the
// full Heimdall pipeline resolves each pilot-study issue.
#include <gtest/gtest.h>

#include "config/serialize.hpp"
#include "dataplane/reachability.hpp"
#include "msp/workflow.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"

namespace heimdall {
namespace {

using namespace heimdall::net;

TEST(Smoke, EnterpriseBuildsAndConverges) {
  Network network = scen::build_enterprise();
  EXPECT_EQ(network.count(DeviceKind::Router), 9u);
  EXPECT_EQ(network.count(DeviceKind::Host), 9u);
  EXPECT_EQ(network.topology().links().size(), 22u);

  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  dp::ReachabilityMatrix matrix = dp::ReachabilityMatrix::compute(network, dataplane);
  EXPECT_EQ(matrix.total_count(), 72u);
  // Baseline health: h1 reaches h4 and h7; nothing outside the DMZ reaches h8.
  EXPECT_TRUE(matrix.reachable(DeviceId("h1"), DeviceId("h4")));
  EXPECT_TRUE(matrix.reachable(DeviceId("h1"), DeviceId("h7")));
  EXPECT_FALSE(matrix.reachable(DeviceId("h1"), DeviceId("h8")));
  EXPECT_TRUE(matrix.reachable(DeviceId("h7"), DeviceId("h8")));
  EXPECT_TRUE(matrix.reachable(DeviceId("ext"), DeviceId("h1")));
}

TEST(Smoke, UniversityBuildsAndConverges) {
  Network network = scen::build_university();
  EXPECT_EQ(network.count(DeviceKind::Router), 13u);
  EXPECT_EQ(network.count(DeviceKind::Host), 17u);
  EXPECT_EQ(network.topology().links().size(), 92u);

  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  dp::ReachabilityMatrix matrix = dp::ReachabilityMatrix::compute(network, dataplane);
  EXPECT_EQ(matrix.total_count(), 17u * 16u);
  EXPECT_TRUE(matrix.reachable(DeviceId("uh1"), DeviceId("uh15")));
  EXPECT_FALSE(matrix.reachable(DeviceId("uh2"), DeviceId("uh15")));
  EXPECT_TRUE(matrix.reachable(DeviceId("uh1"), DeviceId("uh8")));
}

TEST(Smoke, PolicyBudgetsMatchTable1) {
  Network enterprise = scen::build_enterprise();
  EXPECT_EQ(scen::enterprise_policies(enterprise).size(), scen::kEnterprisePolicyBudget);
  Network university = scen::build_university();
  EXPECT_EQ(scen::university_policies(university).size(), scen::kUniversityPolicyBudget);
}

TEST(Smoke, EveryIssueResolvesThroughHeimdall) {
  struct Case {
    Network network;
    std::vector<scen::IssueSpec> issues;
    std::vector<spec::Policy> policies;
  };
  std::vector<Case> cases;
  {
    Network network = scen::build_enterprise();
    cases.push_back({network, scen::enterprise_issues(), scen::enterprise_policies(network)});
  }
  {
    Network network = scen::build_university();
    cases.push_back({network, scen::university_issues(), scen::university_policies(network)});
  }

  for (Case& test_case : cases) {
    for (const scen::IssueSpec& issue : test_case.issues) {
      Network production = test_case.network;
      issue.inject(production);
      enforce::PolicyEnforcer enforcer(
          spec::PolicyVerifier(test_case.policies),
          enforce::SimulatedEnclave("heimdall-enforcer-v1", "hw-root-key"));
      msp::Technician technician;
      msp::WorkflowResult result = msp::run_heimdall_workflow(
          production, enforcer, issue.ticket, issue.fix_script, technician, issue.resolved);
      EXPECT_TRUE(result.changes_applied)
          << production.name() << "/" << issue.key << ": changes not applied";
      EXPECT_TRUE(result.issue_resolved)
          << production.name() << "/" << issue.key << ": issue not resolved";
      EXPECT_EQ(result.commands_denied, 0u) << production.name() << "/" << issue.key;
      EXPECT_TRUE(enforcer.audit_intact());
    }
  }
}

}  // namespace
}  // namespace heimdall
