// Unit tests for the dataplane simulator: FIB/LPM, L2 domains, OSPF SPF,
// flow tracing, reachability.
#include <gtest/gtest.h>

#include "dataplane/compiled.hpp"
#include "dataplane/reachability.hpp"
#include "scenarios/builder.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"
#include "util/error.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace heimdall::dp {
namespace {

using namespace heimdall::net;
using heimdall::scen::add_svi;
using heimdall::scen::attach_host_access;
using heimdall::scen::attach_host_routed;
using heimdall::scen::connect_routers;
using heimdall::scen::make_host;
using heimdall::scen::make_router;
using heimdall::scen::ospf_network;

Ipv4Address ip(const char* text) { return Ipv4Address::parse(text); }

Route route_to(const char* prefix, RouteProtocol protocol, unsigned metric = 0,
               const char* next_hop = nullptr) {
  Route route;
  route.prefix = Ipv4Prefix::parse(prefix);
  route.protocol = protocol;
  route.admin_distance = default_admin_distance(protocol);
  route.metric = metric;
  route.out_iface = InterfaceId("e0");
  if (next_hop) route.next_hop = ip(next_hop);
  return route;
}

// -------------------------------------------------------------------- FIB --

TEST(Fib, LongestPrefixMatchWins) {
  Fib fib;
  fib.insert(route_to("10.0.0.0/8", RouteProtocol::Static, 0, "1.1.1.1"));
  fib.insert(route_to("10.1.0.0/16", RouteProtocol::Static, 0, "2.2.2.2"));
  fib.insert(route_to("10.1.2.0/24", RouteProtocol::Static, 0, "3.3.3.3"));

  EXPECT_EQ(fib.lookup(ip("10.1.2.9"))->next_hop, ip("3.3.3.3"));
  EXPECT_EQ(fib.lookup(ip("10.1.9.9"))->next_hop, ip("2.2.2.2"));
  EXPECT_EQ(fib.lookup(ip("10.9.9.9"))->next_hop, ip("1.1.1.1"));
  EXPECT_FALSE(fib.lookup(ip("11.0.0.1")).has_value());
}

TEST(Fib, DefaultRouteCatchesAll) {
  Fib fib;
  fib.insert(route_to("0.0.0.0/0", RouteProtocol::Static, 0, "9.9.9.9"));
  EXPECT_EQ(fib.lookup(ip("1.2.3.4"))->next_hop, ip("9.9.9.9"));
  EXPECT_EQ(fib.lookup(ip("255.255.255.255"))->next_hop, ip("9.9.9.9"));
}

TEST(Fib, AdminDistanceBreaksPrefixTies) {
  Fib fib;
  fib.insert(route_to("10.0.0.0/8", RouteProtocol::Ospf, 20, "1.1.1.1"));
  fib.insert(route_to("10.0.0.0/8", RouteProtocol::Static, 0, "2.2.2.2"));
  EXPECT_EQ(fib.lookup(ip("10.5.5.5"))->protocol, RouteProtocol::Static);
  EXPECT_EQ(fib.size(), 1u);  // one route per prefix survives
}

TEST(Fib, MetricBreaksProtocolTies) {
  Fib fib;
  fib.insert(route_to("10.0.0.0/8", RouteProtocol::Ospf, 30, "1.1.1.1"));
  fib.insert(route_to("10.0.0.0/8", RouteProtocol::Ospf, 10, "2.2.2.2"));
  EXPECT_EQ(fib.lookup(ip("10.5.5.5"))->next_hop, ip("2.2.2.2"));
}

TEST(Fib, CopyIsDeep) {
  Fib fib;
  fib.insert(route_to("10.0.0.0/8", RouteProtocol::Static, 0, "1.1.1.1"));
  Fib copy = fib;
  copy.insert(route_to("11.0.0.0/8", RouteProtocol::Static, 0, "2.2.2.2"));
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
}

TEST(Fib, RoutesAreSortedMostSpecificFirst) {
  Fib fib;
  fib.insert(route_to("10.0.0.0/8", RouteProtocol::Static, 0, "1.1.1.1"));
  fib.insert(route_to("10.1.0.0/16", RouteProtocol::Static, 0, "1.1.1.1"));
  fib.insert(route_to("0.0.0.0/0", RouteProtocol::Static, 0, "1.1.1.1"));
  auto routes = fib.routes();
  ASSERT_EQ(routes.size(), 3u);
  EXPECT_EQ(routes[0].prefix.length(), 16u);
  EXPECT_EQ(routes[2].prefix.length(), 0u);
}

TEST(Fib, ExactRouteLookup) {
  Fib fib;
  fib.insert(route_to("10.1.0.0/16", RouteProtocol::Static, 0, "1.1.1.1"));
  EXPECT_TRUE(fib.route_for(Ipv4Prefix::parse("10.1.0.0/16")).has_value());
  EXPECT_FALSE(fib.route_for(Ipv4Prefix::parse("10.0.0.0/8")).has_value());
}

// -------------------------------------------------------------- L2 domains --

/// Two hosts on one switch, same VLAN.
Network switch_pair(VlanId vlan_a, VlanId vlan_b) {
  Network network("l2");
  Device sw(DeviceId("sw1"), DeviceKind::Switch);
  sw.vlans() = {10, 20};
  Interface p1;
  p1.id = InterfaceId("Fa0/1");
  p1.mode = SwitchportMode::Access;
  p1.access_vlan = vlan_a;
  sw.add_interface(p1);
  Interface p2;
  p2.id = InterfaceId("Fa0/2");
  p2.mode = SwitchportMode::Access;
  p2.access_vlan = vlan_b;
  sw.add_interface(p2);
  network.add_device(std::move(sw));
  network.add_device(make_host("ha", ip("10.0.0.1"), 24, ip("10.0.0.254")));
  network.add_device(make_host("hb", ip("10.0.0.2"), 24, ip("10.0.0.254")));
  network.connect({DeviceId("sw1"), InterfaceId("Fa0/1")}, {DeviceId("ha"), InterfaceId("eth0")});
  network.connect({DeviceId("sw1"), InterfaceId("Fa0/2")}, {DeviceId("hb"), InterfaceId("eth0")});
  return network;
}

TEST(L2, SameVlanShareSegment) {
  Network network = switch_pair(10, 10);
  L2Domains domains = L2Domains::compute(network);
  EXPECT_TRUE(domains.adjacent({DeviceId("ha"), InterfaceId("eth0")},
                               {DeviceId("hb"), InterfaceId("eth0")}));
}

TEST(L2, DifferentVlanSplitSegments) {
  Network network = switch_pair(10, 20);
  L2Domains domains = L2Domains::compute(network);
  EXPECT_FALSE(domains.adjacent({DeviceId("ha"), InterfaceId("eth0")},
                                {DeviceId("hb"), InterfaceId("eth0")}));
}

TEST(L2, TrunkCarriesSharedVlansOnly) {
  // ha on sw1 vlan 10, hb on sw2 vlan 10, trunk sw1-sw2 allows {10}: joined.
  // hc on sw2 vlan 20: isolated from both.
  Network network("trunked");
  for (const char* name : {"sw1", "sw2"}) {
    Device sw(DeviceId(name), DeviceKind::Switch);
    sw.vlans() = {10, 20};
    Interface access;
    access.id = InterfaceId("Fa0/1");
    access.mode = SwitchportMode::Access;
    access.access_vlan = 10;
    sw.add_interface(access);
    Interface access2;
    access2.id = InterfaceId("Fa0/2");
    access2.mode = SwitchportMode::Access;
    access2.access_vlan = 20;
    sw.add_interface(access2);
    Interface trunk;
    trunk.id = InterfaceId("Gi0/1");
    trunk.mode = SwitchportMode::Trunk;
    trunk.trunk_allowed = {10};
    sw.add_interface(trunk);
    network.add_device(std::move(sw));
  }
  network.add_device(make_host("ha", ip("10.0.0.1"), 24, ip("10.0.0.254")));
  network.add_device(make_host("hb", ip("10.0.0.2"), 24, ip("10.0.0.254")));
  network.add_device(make_host("hc", ip("10.0.0.3"), 24, ip("10.0.0.254")));
  network.connect({DeviceId("sw1"), InterfaceId("Fa0/1")}, {DeviceId("ha"), InterfaceId("eth0")});
  network.connect({DeviceId("sw2"), InterfaceId("Fa0/1")}, {DeviceId("hb"), InterfaceId("eth0")});
  network.connect({DeviceId("sw2"), InterfaceId("Fa0/2")}, {DeviceId("hc"), InterfaceId("eth0")});
  network.connect({DeviceId("sw1"), InterfaceId("Gi0/1")}, {DeviceId("sw2"), InterfaceId("Gi0/1")});

  L2Domains domains = L2Domains::compute(network);
  Endpoint ha{DeviceId("ha"), InterfaceId("eth0")};
  Endpoint hb{DeviceId("hb"), InterfaceId("eth0")};
  Endpoint hc{DeviceId("hc"), InterfaceId("eth0")};
  EXPECT_TRUE(domains.adjacent(ha, hb));
  EXPECT_FALSE(domains.adjacent(ha, hc));
  EXPECT_FALSE(domains.adjacent(hb, hc));
}

TEST(L2, ShutdownPortLeavesSegment) {
  Network network = switch_pair(10, 10);
  network.device(DeviceId("sw1")).interface(InterfaceId("Fa0/2")).shutdown = true;
  L2Domains domains = L2Domains::compute(network);
  EXPECT_FALSE(domains.adjacent({DeviceId("ha"), InterfaceId("eth0")},
                                {DeviceId("hb"), InterfaceId("eth0")}));
}

TEST(L2, SviJoinsVlanDomain) {
  Network network = switch_pair(10, 10);
  Device& sw = network.device(DeviceId("sw1"));
  add_svi(sw, 10, ip("10.0.0.254"), 24);
  L2Domains domains = L2Domains::compute(network);
  EXPECT_TRUE(domains.adjacent({DeviceId("sw1"), InterfaceId("Vlan10")},
                               {DeviceId("ha"), InterfaceId("eth0")}));
  auto segment = domains.segment_of({DeviceId("ha"), InterfaceId("eth0")});
  ASSERT_TRUE(segment.has_value());
  EXPECT_EQ(domains.resolve_ip(*segment, ip("10.0.0.254"), network),
            (Endpoint{DeviceId("sw1"), InterfaceId("Vlan10")}));
}

TEST(L2, RoutedPointToPoint) {
  Network network("p2p");
  network.add_device(make_router("r1"));
  network.add_device(make_router("r2"));
  connect_routers(network, "r1", "e0", ip("10.1.1.1"), "r2", "e0", ip("10.1.1.2"));
  L2Domains domains = L2Domains::compute(network);
  EXPECT_TRUE(domains.adjacent({DeviceId("r1"), InterfaceId("e0")},
                               {DeviceId("r2"), InterfaceId("e0")}));
}

// ------------------------------------------------------------------- OSPF --

/// Square of routers with a host on each of r1/r4's stub interfaces:
/// r1 - r2 - r4, r1 - r3 - r4 (equal costs unless overridden).
Network ospf_square() {
  Network network("square");
  for (const char* name : {"r1", "r2", "r3", "r4"}) network.add_device(make_router(name));
  connect_routers(network, "r1", "e0", ip("10.1.12.1"), "r2", "e0", ip("10.1.12.2"));
  connect_routers(network, "r1", "e1", ip("10.1.13.1"), "r3", "e0", ip("10.1.13.2"));
  connect_routers(network, "r2", "e1", ip("10.1.24.1"), "r4", "e0", ip("10.1.24.2"));
  connect_routers(network, "r3", "e1", ip("10.1.34.1"), "r4", "e1", ip("10.1.34.2"));
  network.add_device(make_host("h1", ip("10.0.1.10"), 24, ip("10.0.1.1")));
  network.add_device(make_host("h4", ip("10.0.4.10"), 24, ip("10.0.4.1")));
  attach_host_routed(network, "r1", "e2", ip("10.0.1.1"), 24, "h1");
  attach_host_routed(network, "r4", "e2", ip("10.0.4.1"), 24, "h4");
  for (Device& device : network.devices()) {
    if (!device.is_router()) continue;
    for (const Interface& iface : device.interfaces()) {
      if (iface.address) ospf_network(device, iface.address->subnet(), 0);
    }
  }
  return network;
}

TEST(Ospf, FormsAdjacenciesAndRoutes) {
  Network network = ospf_square();
  Dataplane dataplane = Dataplane::compute(network);
  EXPECT_EQ(dataplane.ospf_adjacencies().size(), 4u);

  // r1 learns the far stub subnet.
  auto route = dataplane.fib(DeviceId("r1")).lookup(ip("10.0.4.10"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->protocol, RouteProtocol::Ospf);
  // Two hops at default cost 10 + stub cost 10.
  EXPECT_EQ(route->metric, 30u);
}

TEST(Ospf, EcmpTieBreakIsDeterministic) {
  Network network = ospf_square();
  Dataplane a = Dataplane::compute(network);
  Dataplane b = Dataplane::compute(network);
  auto route_a = a.fib(DeviceId("r1")).lookup(ip("10.0.4.10"));
  auto route_b = b.fib(DeviceId("r1")).lookup(ip("10.0.4.10"));
  ASSERT_TRUE(route_a && route_b);
  EXPECT_EQ(route_a->next_hop, route_b->next_hop);
  // Lowest next-hop address wins the tie: r2 (10.1.12.2) < r3 (10.1.13.2).
  EXPECT_EQ(route_a->next_hop, ip("10.1.12.2"));
}

TEST(Ospf, CostSteersPathSelection) {
  Network network = ospf_square();
  // Make the r2 branch expensive: r1 must route via r3.
  network.device(DeviceId("r1")).interface(InterfaceId("e0")).ospf_cost = 100;
  Dataplane dataplane = Dataplane::compute(network);
  auto route = dataplane.fib(DeviceId("r1")).lookup(ip("10.0.4.10"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, ip("10.1.13.2"));
}

TEST(Ospf, ShutdownInterfaceDropsAdjacency) {
  Network network = ospf_square();
  network.device(DeviceId("r1")).interface(InterfaceId("e0")).shutdown = true;
  Dataplane dataplane = Dataplane::compute(network);
  EXPECT_EQ(dataplane.ospf_adjacencies().size(), 3u);
  // Traffic still flows via r3.
  auto route = dataplane.fib(DeviceId("r1")).lookup(ip("10.0.4.10"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, ip("10.1.13.2"));
}

TEST(Ospf, PassiveInterfaceAdvertisesButNoAdjacency) {
  Network network = ospf_square();
  // Make r4's e0 (to r2) passive on both sides: adjacency disappears but
  // r4's stub subnet is still advertised via the r3 branch.
  network.device(DeviceId("r4")).ospf()->passive_interfaces.push_back(InterfaceId("e0"));
  network.device(DeviceId("r2")).ospf()->passive_interfaces.push_back(InterfaceId("e1"));
  Dataplane dataplane = Dataplane::compute(network);
  EXPECT_EQ(dataplane.ospf_adjacencies().size(), 3u);
  auto route = dataplane.fib(DeviceId("r1")).lookup(ip("10.0.4.10"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, ip("10.1.13.2"));
}

TEST(Ospf, AreaMismatchBlocksAdjacency) {
  Network network = ospf_square();
  // r3's side of the r3-r4 link goes to area 7; r4 stays in 0: no adjacency.
  Device& r3 = network.device(DeviceId("r3"));
  for (OspfNetwork& statement : r3.ospf()->networks) {
    if (statement.prefix == Ipv4Prefix::parse("10.1.34.0/30")) statement.area = 7;
  }
  Dataplane dataplane = Dataplane::compute(network);
  EXPECT_EQ(dataplane.ospf_adjacencies().size(), 3u);
}

TEST(Ospf, InterAreaRoutingThroughAbr) {
  // Chain r1 --(area 0)-- r2 --(area 1)-- r3, stub host subnets on r1 & r3.
  Network network("chain");
  for (const char* name : {"r1", "r2", "r3"}) network.add_device(make_router(name));
  connect_routers(network, "r1", "e0", ip("10.1.12.1"), "r2", "e0", ip("10.1.12.2"));
  connect_routers(network, "r2", "e1", ip("10.1.23.1"), "r3", "e0", ip("10.1.23.2"));
  network.add_device(make_host("h1", ip("10.0.1.10"), 24, ip("10.0.1.1")));
  network.add_device(make_host("h3", ip("10.0.3.10"), 24, ip("10.0.3.1")));
  attach_host_routed(network, "r1", "e2", ip("10.0.1.1"), 24, "h1");
  attach_host_routed(network, "r3", "e2", ip("10.0.3.1"), 24, "h3");

  Device& r1 = network.device(DeviceId("r1"));
  ospf_network(r1, Ipv4Prefix::parse("10.1.12.0/30"), 0);
  ospf_network(r1, Ipv4Prefix::parse("10.0.1.0/24"), 0);
  Device& r2 = network.device(DeviceId("r2"));
  ospf_network(r2, Ipv4Prefix::parse("10.1.12.0/30"), 0);
  ospf_network(r2, Ipv4Prefix::parse("10.1.23.0/30"), 1);
  Device& r3 = network.device(DeviceId("r3"));
  ospf_network(r3, Ipv4Prefix::parse("10.1.23.0/30"), 1);
  ospf_network(r3, Ipv4Prefix::parse("10.0.3.0/24"), 1);

  Dataplane dataplane = Dataplane::compute(network);
  // r1 (pure area 0) reaches the area-1 stub via the ABR r2.
  auto route = dataplane.fib(DeviceId("r1")).lookup(ip("10.0.3.10"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, ip("10.1.12.2"));
  // And end-to-end host traffic works.
  TraceResult trace = trace_hosts(network, dataplane, DeviceId("h1"), DeviceId("h3"));
  EXPECT_TRUE(trace.delivered());
}

// ------------------------------------------------------------------ trace --

TEST(Trace, DeliversAcrossEnterprise) {
  Network network = scen::build_enterprise();
  Dataplane dataplane = Dataplane::compute(network);
  TraceResult trace = trace_hosts(network, dataplane, DeviceId("h1"), DeviceId("h4"));
  EXPECT_TRUE(trace.delivered());
  auto path = trace.path();
  EXPECT_EQ(path.front(), DeviceId("h1"));
  EXPECT_EQ(path.back(), DeviceId("h4"));
}

TEST(Trace, AclDenyInbound) {
  Network network = scen::build_enterprise();
  Dataplane dataplane = Dataplane::compute(network);
  TraceResult trace = trace_hosts(network, dataplane, DeviceId("h2"), DeviceId("h7"));
  EXPECT_EQ(trace.disposition, Disposition::DeniedInbound);
  EXPECT_EQ(trace.last_device, DeviceId("r9"));
  EXPECT_NE(trace.detail.find("DMZ_IN"), std::string::npos);
}

TEST(Trace, UnknownEndpoints) {
  Network network = scen::build_enterprise();
  Dataplane dataplane = Dataplane::compute(network);
  Flow flow;
  flow.src_ip = ip("203.0.113.99");
  flow.dst_ip = ip("10.0.10.10");
  EXPECT_EQ(trace_flow(network, dataplane, flow).disposition, Disposition::UnknownSource);
  flow.src_ip = ip("10.0.10.10");
  flow.dst_ip = ip("203.0.113.99");
  EXPECT_EQ(trace_flow(network, dataplane, flow).disposition, Disposition::UnknownDestination);
}

TEST(Trace, SourceDownAndNoRoute) {
  Network network = ospf_square();
  network.device(DeviceId("h1")).interface(InterfaceId("eth0")).shutdown = true;
  Dataplane dataplane = Dataplane::compute(network);
  Flow flow;
  flow.src_ip = ip("10.0.1.10");
  flow.dst_ip = ip("10.0.4.10");
  // Source iface down: its address no longer resolves to an endpoint at all,
  // or reports SourceDown when it does.
  auto disposition = trace_flow(network, dataplane, flow).disposition;
  EXPECT_TRUE(disposition == Disposition::SourceDown ||
              disposition == Disposition::UnknownSource);

  // No-route: host with no default route.
  Network bare = ospf_square();
  bare.device(DeviceId("h1")).static_routes().clear();
  Dataplane bare_dataplane = Dataplane::compute(bare);
  EXPECT_EQ(trace_flow(bare, bare_dataplane, flow).disposition, Disposition::NoRoute);
}

TEST(Trace, NextHopUnreachableWhenGatewayPortDown) {
  Network network = ospf_square();
  network.device(DeviceId("r1")).interface(InterfaceId("e2")).shutdown = true;
  Dataplane dataplane = Dataplane::compute(network);
  TraceResult trace = trace_hosts(network, dataplane, DeviceId("h1"), DeviceId("h4"));
  EXPECT_EQ(trace.disposition, Disposition::NextHopUnreachable);
  EXPECT_EQ(trace.last_device, DeviceId("h1"));
}

TEST(Trace, LoopDetection) {
  // h9's subnet exists behind r3, but r1 and r2 point static routes for it
  // at each other — a classic routing loop.
  Network network("loop");
  for (const char* name : {"r1", "r2", "r3"}) network.add_device(make_router(name));
  connect_routers(network, "r1", "e0", ip("10.1.1.1"), "r2", "e0", ip("10.1.1.2"));
  connect_routers(network, "r2", "e1", ip("10.1.2.1"), "r3", "e0", ip("10.1.2.2"));
  network.add_device(make_host("h1", ip("10.0.1.10"), 24, ip("10.0.1.1")));
  network.add_device(make_host("h9", ip("10.0.9.10"), 24, ip("10.0.9.1")));
  attach_host_routed(network, "r1", "e1", ip("10.0.1.1"), 24, "h1");
  attach_host_routed(network, "r3", "e1", ip("10.0.9.1"), 24, "h9");

  auto add_static = [&](const char* router, const char* next_hop) {
    StaticRoute route;
    route.prefix = Ipv4Prefix::parse("10.0.9.0/24");
    route.next_hop = ip(next_hop);
    network.device(DeviceId(router)).static_routes().push_back(route);
  };
  add_static("r1", "10.1.1.2");  // r1 -> r2
  add_static("r2", "10.1.1.1");  // r2 -> r1 (should have been 10.1.2.2)

  Dataplane dataplane = Dataplane::compute(network);
  TraceResult trace = trace_hosts(network, dataplane, DeviceId("h1"), DeviceId("h9"));
  EXPECT_EQ(trace.disposition, Disposition::Loop);
  EXPECT_GT(trace.hops.size(), 30u);
  // Regression: the hop loop once ran kHopLimit + 1 iterations (<=), so a
  // 32-hop limit recorded 33 hops. Each loop iteration forwards exactly one
  // hop here, so the trace must record exactly the limit.
  EXPECT_EQ(trace.hops.size(), 32u);
}

// ---------------------------------------------------------- reachability --

TEST(Reachability, MatrixCountsAndDiff) {
  Network network = scen::build_enterprise();
  Dataplane dataplane = Dataplane::compute(network);
  ReachabilityMatrix before = ReachabilityMatrix::compute(network, dataplane);
  EXPECT_EQ(before.total_count(), 72u);
  EXPECT_GT(before.reachable_count(), 50u);

  // Break the VLAN: h2's pairs flip.
  Network broken = network;
  broken.device(DeviceId("r7")).interface(InterfaceId("Fa0/2")).access_vlan = 10;
  Dataplane broken_dataplane = Dataplane::compute(broken);
  ReachabilityMatrix after = ReachabilityMatrix::compute(broken, broken_dataplane);
  auto flips = ReachabilityMatrix::diff(before, after);
  EXPECT_FALSE(flips.empty());
  for (const auto& [src, dst, was, now] : flips) {
    EXPECT_TRUE(src == DeviceId("h2") || dst == DeviceId("h2"))
        << src.str() << "->" << dst.str();
    EXPECT_TRUE(was);
    EXPECT_FALSE(now);
  }
}

// --------------------------------------------------------- compiled plane --

TEST(Fib, RoutesCollectAllInsertedRoutes) {
  util::Rng rng(7);
  Fib fib;
  for (int i = 0; i < 2000; ++i) {
    unsigned length = static_cast<unsigned>(rng.next_in(0, 32));
    Ipv4Prefix prefix(Ipv4Address(static_cast<std::uint32_t>(rng.next())), length);
    Route route;
    route.prefix = prefix;
    route.protocol = RouteProtocol::Static;
    route.admin_distance = default_admin_distance(RouteProtocol::Static);
    route.next_hop = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    route.out_iface = InterfaceId("e0");
    fib.insert(route);
  }
  // size() counts one route per distinct prefix; routes() must collect
  // exactly that many.
  EXPECT_EQ(fib.routes().size(), fib.size());
}

TEST(CompiledFib, MatchesTrieOnRandomInputs) {
  util::Rng rng(42);
  Fib fib;
  for (int i = 0; i < 4000; ++i) {
    // Bias toward clustered prefixes so lookups actually collide.
    std::uint32_t base = rng.chance(0.5) ? 0x0a000000u : static_cast<std::uint32_t>(rng.next());
    unsigned length = static_cast<unsigned>(rng.next_in(0, 32));
    Route route;
    route.prefix = Ipv4Prefix(Ipv4Address(base ^ static_cast<std::uint32_t>(rng.next() & 0xffffu)),
                              length);
    route.protocol = rng.chance(0.5) ? RouteProtocol::Static : RouteProtocol::Ospf;
    route.admin_distance = default_admin_distance(route.protocol);
    route.metric = static_cast<unsigned>(rng.next_in(0, 100));
    route.next_hop = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    route.out_iface = InterfaceId("e0");
    fib.insert(route);
  }

  CompiledFib compiled = CompiledFib::build(fib);
  EXPECT_EQ(compiled.size(), fib.size());

  for (int i = 0; i < 20000; ++i) {
    // Half the probes land near the clustered space, half anywhere.
    std::uint32_t probe = rng.chance(0.5)
                              ? 0x0a000000u | static_cast<std::uint32_t>(rng.next() & 0x1ffffu)
                              : static_cast<std::uint32_t>(rng.next());
    Ipv4Address address(probe);
    auto expected = fib.lookup(address);
    auto got = compiled.lookup(address);
    ASSERT_EQ(expected.has_value(), got.has_value()) << address.to_string();
    if (expected) {
      EXPECT_EQ(expected->prefix, got->prefix) << address.to_string();
      EXPECT_EQ(expected->next_hop, got->next_hop) << address.to_string();
      EXPECT_EQ(expected->out_iface, got->out_iface) << address.to_string();
    }
  }
}

/// Pins CompiledFib to the trie on a probe set at one table stride: the
/// matched prefix must be identical, and lookup_many must agree with
/// lookup_index entry-for-entry (including misses).
void expect_fib_equivalence(const Fib& fib, const std::vector<Ipv4Address>& probes,
                            unsigned stride) {
  CompiledFib compiled = CompiledFib::build(fib, {stride});
  ASSERT_EQ(compiled.size(), fib.size());
  if (stride != 0) EXPECT_EQ(compiled.stride(), stride);

  std::vector<std::uint32_t> batch(probes.size());
  compiled.lookup_many(probes, batch);

  for (std::size_t i = 0; i < probes.size(); ++i) {
    std::uint32_t idx = compiled.lookup_index(probes[i]);
    ASSERT_EQ(batch[i], idx) << "stride " << compiled.stride() << " lookup_many diverged at "
                             << probes[i].to_string();
    auto expected = fib.lookup(probes[i]);
    ASSERT_EQ(expected.has_value(), idx != CompiledFib::kMiss)
        << "stride " << compiled.stride() << " " << probes[i].to_string();
    if (expected) {
      ASSERT_EQ(expected->prefix, compiled.route(idx).prefix)
          << "stride " << compiled.stride() << " " << probes[i].to_string();
    }
  }
}

Route plain_route(const char* prefix) {
  return route_to(prefix, RouteProtocol::Static, 0, "192.0.2.1");
}

TEST(CompiledFib, DefaultRouteOnly) {
  Fib fib;
  fib.insert(plain_route("0.0.0.0/0"));

  std::vector<Ipv4Address> probes = {ip("0.0.0.0"), ip("10.1.2.3"), ip("127.255.255.255"),
                                     ip("128.0.0.0"), ip("255.255.255.255")};
  for (unsigned stride : {8u, 16u, 24u, 0u}) expect_fib_equivalence(fib, probes, stride);

  // The /0 paints every top-table entry and needs no overflow chunks at any
  // stride.
  CompiledFib compiled = CompiledFib::build(fib, {24});
  EXPECT_EQ(compiled.overflow_chunks(), 0u);
  EXPECT_EQ(compiled.table_bytes(), (1u << 24) * sizeof(std::uint32_t));
}

TEST(CompiledFib, EmptyFibMissesEverywhere) {
  Fib fib;
  for (unsigned stride : {8u, 16u, 24u, 0u}) {
    CompiledFib compiled = CompiledFib::build(fib, {stride});
    EXPECT_EQ(compiled.lookup_index(ip("10.0.0.1")), CompiledFib::kMiss);
    EXPECT_FALSE(compiled.lookup(ip("0.0.0.0")).has_value());
  }
}

TEST(CompiledFib, RefinementsCrossTopEntryBoundaries) {
  // Adjacent /24s whose longer refinements straddle the /24 (and, at /16
  // stride, the /16) top-table entry boundaries: a paint that pre-fills a
  // fresh chunk with the wrong covering route, or chunks spilled across two
  // top entries, shows up here.
  Fib fib;
  fib.insert(plain_route("10.0.1.0/24"));
  fib.insert(plain_route("10.0.2.0/24"));
  fib.insert(plain_route("10.0.1.128/25"));  // upper half of the first /24
  fib.insert(plain_route("10.0.2.0/25"));    // lower half of the second /24
  fib.insert(plain_route("10.0.1.192/26"));
  fib.insert(plain_route("10.0.1.254/31"));  // hugs the 10.0.1/10.0.2 boundary
  fib.insert(plain_route("10.0.2.0/32"));    // first address of the second /24
  fib.insert(plain_route("10.0.1.255/32"));  // last address of the first /24
  fib.insert(plain_route("10.0.255.0/24"));  // last /24 of the 10.0/16 entry
  fib.insert(plain_route("10.0.255.255/32"));
  fib.insert(plain_route("10.1.0.0/32"));    // first address of the next /16

  // Exhaustive over 10.0.0.0/22 plus the /16 boundary neighborhood.
  std::vector<Ipv4Address> probes;
  for (std::uint32_t a = ip("10.0.0.0").value(); a <= ip("10.0.3.255").value(); ++a)
    probes.emplace_back(a);
  for (std::uint32_t a = ip("10.0.255.0").value(); a <= ip("10.1.0.255").value(); ++a)
    probes.emplace_back(a);
  probes.push_back(ip("10.2.0.0"));
  probes.push_back(ip("9.255.255.255"));

  for (unsigned stride : {8u, 16u, 24u, 0u}) expect_fib_equivalence(fib, probes, stride);
}

TEST(CompiledFib, OverlappingSlash31AndSlash32) {
  // /32s refine a covering /31 (one fully shadowing half of it) — the
  // deepest chunk level where entry pre-fill and most-specific-wins meet.
  Fib fib;
  fib.insert(plain_route("172.16.0.0/24"));
  fib.insert(plain_route("172.16.0.10/31"));
  fib.insert(plain_route("172.16.0.10/32"));  // shadows the even half of the /31
  fib.insert(plain_route("172.16.0.12/31"));
  fib.insert(plain_route("172.16.0.13/32"));  // shadows the odd half
  fib.insert(plain_route("172.16.0.14/32"));  // /32 with no covering /31

  std::vector<Ipv4Address> probes;
  for (std::uint32_t a = ip("172.16.0.0").value(); a <= ip("172.16.0.32").value(); ++a)
    probes.emplace_back(a);
  probes.push_back(ip("172.16.1.0"));
  for (unsigned stride : {8u, 16u, 24u, 0u}) expect_fib_equivalence(fib, probes, stride);
}

TEST(CompiledFib, FuzzFiftyThousandRoutes) {
  // 50k random routes, 100k probes, pinned at both explicit strides. Route
  // networks are biased into a handful of /8s so prefixes actually nest.
  util::Rng rng(20240808);
  Fib fib;
  for (int i = 0; i < 50000; ++i) {
    std::uint32_t base = static_cast<std::uint32_t>(rng.next());
    if (rng.chance(0.75)) base = 0x0a000000u | (base & 0x00ffffffu);
    unsigned length = static_cast<unsigned>(rng.next_in(0, 32));
    Route route;
    route.prefix = Ipv4Prefix(Ipv4Address(base), length);
    route.protocol = RouteProtocol::Static;
    route.admin_distance = default_admin_distance(route.protocol);
    route.next_hop = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    route.out_iface = InterfaceId("e0");
    fib.insert(route);
  }

  std::vector<Ipv4Address> probes;
  probes.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    std::uint32_t a = static_cast<std::uint32_t>(rng.next());
    if (rng.chance(0.75)) a = 0x0a000000u | (a & 0x00ffffffu);
    probes.emplace_back(a);
  }

  for (unsigned stride : {16u, 24u}) expect_fib_equivalence(fib, probes, stride);
}

void expect_same_trace(const TraceResult& expected, const TraceResult& got,
                       const Flow& flow) {
  ASSERT_EQ(expected.disposition, got.disposition) << flow.to_string();
  EXPECT_EQ(expected.last_device, got.last_device) << flow.to_string();
  EXPECT_EQ(expected.detail, got.detail) << flow.to_string();
  ASSERT_EQ(expected.hops.size(), got.hops.size()) << flow.to_string();
  for (std::size_t h = 0; h < expected.hops.size(); ++h) {
    EXPECT_EQ(expected.hops[h].device, got.hops[h].device) << flow.to_string();
    EXPECT_EQ(expected.hops[h].in_iface, got.hops[h].in_iface) << flow.to_string();
    EXPECT_EQ(expected.hops[h].out_iface, got.hops[h].out_iface) << flow.to_string();
  }
  EXPECT_EQ(expected.path(), got.path()) << flow.to_string();
}

/// Compiled trace must reproduce the reference tracer bit-for-bit: every
/// ordered host pair (ICMP) plus randomized TCP/UDP flows that exercise the
/// per-flow ACL paths a destination cache must not shortcut. `fib_stride`
/// forces the CompiledFib top-table layout (0 = auto) so the whole trace
/// stack is exercised at both the compact and the full DIR-24-8 strides.
void expect_compiled_trace_equivalence(const Network& network, std::uint64_t seed,
                                       unsigned fib_stride = 0) {
  Dataplane dataplane = Dataplane::compute(network);
  CompiledPlane plane = CompiledPlane::compile(network, dataplane, {fib_stride});

  std::vector<Ipv4Address> host_ips;
  for (const DeviceId& host : network.device_ids(DeviceKind::Host))
    host_ips.push_back(*network.primary_ip(host));

  for (Ipv4Address dst : host_ips) {
    CompiledPlane::DstCache cache = plane.make_dst_cache(dst);
    CompiledPlane::TraceCounters counters;
    for (Ipv4Address src : host_ips) {
      if (src == dst) continue;
      Flow flow;
      flow.src_ip = src;
      flow.dst_ip = dst;
      flow.protocol = IpProtocol::Icmp;
      TraceResult got = plane.render(plane.trace_indexed(flow, cache, counters), flow);
      expect_same_trace(trace_flow(network, dataplane, flow), got, flow);
    }
  }

  util::Rng rng(seed);
  const IpProtocol protocols[] = {IpProtocol::Any, IpProtocol::Icmp, IpProtocol::Tcp,
                                  IpProtocol::Udp};
  const std::uint16_t ports[] = {0, 22, 53, 80, 123, 443, 3389, 8080, 65535};
  for (int i = 0; i < 500; ++i) {
    Flow flow;
    // Occasionally probe unknown endpoints too.
    flow.src_ip = rng.chance(0.9) ? host_ips[rng.next_below(host_ips.size())]
                                  : Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    flow.dst_ip = rng.chance(0.9) ? host_ips[rng.next_below(host_ips.size())]
                                  : Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    flow.protocol = protocols[rng.next_below(4)];
    flow.src_port = rng.chance(0.5) ? ports[rng.next_below(9)]
                                    : static_cast<std::uint16_t>(rng.next_in(0, 65535));
    flow.dst_port = rng.chance(0.5) ? ports[rng.next_below(9)]
                                    : static_cast<std::uint16_t>(rng.next_in(0, 65535));
    expect_same_trace(trace_flow(network, dataplane, flow), plane.trace_flow(flow), flow);
  }
}

void expect_same_matrix(const ReachabilityMatrix& expected, const ReachabilityMatrix& got) {
  ASSERT_EQ(expected.total_count(), got.total_count());
  for (std::size_t i = 0; i < expected.pairs().size(); ++i) {
    const PairReachability& e = expected.pairs()[i];
    const PairReachability& g = got.pairs()[i];
    EXPECT_EQ(e.src, g.src);
    EXPECT_EQ(e.dst, g.dst);
    EXPECT_EQ(e.disposition, g.disposition) << e.src.str() << "->" << e.dst.str();
    EXPECT_EQ(e.path, g.path) << e.src.str() << "->" << e.dst.str();
  }
}

TEST(CompiledPlane, TraceEquivalenceEnterprise) {
  // Auto stride plus both explicit table layouts: /16 keeps every scenario
  // route in overflow chunks, /24 is the full DIR-24-8 top table.
  for (unsigned stride : {0u, 16u, 24u})
    expect_compiled_trace_equivalence(scen::build_enterprise(), 1001, stride);
}

TEST(CompiledPlane, TraceEquivalenceUniversity) {
  for (unsigned stride : {0u, 16u, 24u})
    expect_compiled_trace_equivalence(scen::build_university(), 2002, stride);
}

TEST(CompiledPlane, TraceEquivalenceUnderFailures) {
  // Egress-down at the destination gateway.
  Network down = ospf_square();
  down.device(DeviceId("r1")).interface(InterfaceId("e2")).shutdown = true;
  expect_compiled_trace_equivalence(down, 3003);

  // No-route at the source host.
  Network bare = ospf_square();
  bare.device(DeviceId("h1")).static_routes().clear();
  expect_compiled_trace_equivalence(bare, 4004);

  // Source interface shut down.
  Network src_down = ospf_square();
  src_down.device(DeviceId("h1")).interface(InterfaceId("eth0")).shutdown = true;
  expect_compiled_trace_equivalence(src_down, 5005);
}

TEST(CompiledPlane, MatrixEquivalenceBothScenarios) {
  for (const Network& network : {scen::build_enterprise(), scen::build_university()}) {
    Dataplane dataplane = Dataplane::compute(network);
    ReachabilityMatrix reference = ReachabilityMatrix::compute(network, dataplane);
    for (unsigned stride : {0u, 16u, 24u}) {
      CompiledPlane plane = CompiledPlane::compile(network, dataplane, {stride});
      expect_same_matrix(reference, ReachabilityMatrix::compute(plane));
    }
  }
}

TEST(CompiledPlane, MatrixEquivalenceParallel) {
  Network network = scen::build_university();
  Dataplane dataplane = Dataplane::compute(network);
  CompiledPlane plane = CompiledPlane::compile(network, dataplane);
  util::ThreadPool pool(4);
  TraceOptions options;
  options.pool = &pool;
  expect_same_matrix(ReachabilityMatrix::compute(network, dataplane),
                     ReachabilityMatrix::compute(plane, options));
}

TEST(CompiledPlane, RecomputeEquivalence) {
  Network network = scen::build_enterprise();
  Dataplane dataplane = Dataplane::compute(network);
  ReachabilityMatrix base = ReachabilityMatrix::compute(network, dataplane);

  // ACL edit on r9: FIBs and L2 unchanged, so recompute's precondition holds
  // with dirty = {r9}.
  Network changed = network;
  Acl* acl = changed.device(DeviceId("r9")).find_acl("DMZ_IN");
  ASSERT_NE(acl, nullptr);
  AclEntry deny;
  deny.action = AclEntry::Action::Deny;
  deny.protocol = IpProtocol::Icmp;
  acl->entries.insert(acl->entries.begin(), deny);

  Dataplane changed_dataplane = Dataplane::compute(changed);
  CompiledPlane changed_plane = CompiledPlane::compile(changed, changed_dataplane);
  std::set<DeviceId> dirty{DeviceId("r9")};

  std::size_t ref_retraced = 0;
  std::size_t fast_retraced = 0;
  ReachabilityMatrix expected = ReachabilityMatrix::recompute(changed, changed_dataplane, base,
                                                              dirty, {}, &ref_retraced);
  ReachabilityMatrix got =
      ReachabilityMatrix::recompute(changed_plane, base, dirty, {}, &fast_retraced);
  EXPECT_EQ(ref_retraced, fast_retraced);
  EXPECT_GT(fast_retraced, 0u);
  expect_same_matrix(expected, got);
}

TEST(Reachability, PairLookupThrowsForUnknown) {
  Network network = ospf_square();
  Dataplane dataplane = Dataplane::compute(network);
  ReachabilityMatrix matrix = ReachabilityMatrix::compute(network, dataplane);
  EXPECT_TRUE(matrix.has_pair(DeviceId("h1"), DeviceId("h4")));
  EXPECT_FALSE(matrix.has_pair(DeviceId("h1"), DeviceId("ghost")));
  EXPECT_THROW(matrix.pair(DeviceId("h1"), DeviceId("ghost")), util::NotFoundError);
}

}  // namespace
}  // namespace heimdall::dp
