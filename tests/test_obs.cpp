// Tests for the telemetry subsystem (src/obs/): histogram bucket/percentile
// math, logger sinks and level filtering, span nesting and ordering under a
// manual time source, per-thread tracks under util::ThreadPool, Chrome
// trace_event JSON round-trips, and the workflow-level guarantee that spans
// carry the same ticket ID the audit trail records.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "enforcer/enforcer.hpp"
#include "msp/workflow.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenarios/enterprise.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace heimdall {
namespace {

// ---------------------------------------------------------------- metrics --

TEST(Metrics, CounterAndGauge) {
  obs::Counter counter;
  counter.add();
  counter.add(4);
  EXPECT_EQ(counter.value(), 5u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);

  obs::Gauge gauge;
  gauge.set(7);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 4);
}

TEST(Metrics, HistogramBucketAssignment) {
  obs::Histogram histogram({1, 2, 5});
  histogram.observe(0.5);  // bucket le=1
  histogram.observe(1.0);  // bucket le=1 (bounds are inclusive upper bounds)
  histogram.observe(1.5);  // bucket le=2
  histogram.observe(3.0);  // bucket le=5
  histogram.observe(7.0);  // overflow

  obs::HistogramSnapshot snapshot = histogram.snapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 13.0);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 13.0 / 5.0);
}

TEST(Metrics, HistogramPercentiles) {
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  obs::Histogram histogram(bounds);
  for (int v = 1; v <= 100; ++v) histogram.observe(v);

  obs::HistogramSnapshot snapshot = histogram.snapshot();
  // Uniform 1..100 over decade buckets: percentile ~= its rank, up to the
  // interpolation error within one bucket.
  EXPECT_NEAR(snapshot.p50(), 50.0, 10.0);
  EXPECT_NEAR(snapshot.p95(), 95.0, 10.0);
  EXPECT_NEAR(snapshot.p99(), 99.0, 10.0);
  EXPECT_LE(snapshot.p50(), snapshot.p95());
  EXPECT_LE(snapshot.p95(), snapshot.p99());

  // Values past the last bound report the largest finite bound.
  obs::Histogram overflow({1.0});
  for (int i = 0; i < 10; ++i) overflow.observe(50.0);
  EXPECT_DOUBLE_EQ(overflow.snapshot().p99(), 1.0);
}

TEST(Metrics, EmptyHistogramIsSane) {
  obs::Histogram histogram({1, 2});
  obs::HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 0.0);
}

TEST(Metrics, RegistryFindsOrCreatesAndExports) {
  obs::Registry registry;
  registry.counter("requests").add(3);
  EXPECT_EQ(&registry.counter("requests"), &registry.counter("requests"));
  registry.gauge("depth").set(2);
  registry.histogram("latency_ms", {1, 10}).observe(4.0);

  obs::MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "requests");
  EXPECT_EQ(snapshot.counters[0].second, 3u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count, 1u);

  // JSON export parses and carries the same numbers.
  util::Json doc = util::Json::parse(registry.to_json());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("requests").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("depth").as_number(), 2.0);
  const util::Json& latency = doc.at("histograms").at("latency_ms");
  EXPECT_DOUBLE_EQ(latency.at("count").as_number(), 1.0);
  EXPECT_FALSE(latency.at("buckets").as_array().empty());

  registry.reset();
  EXPECT_EQ(registry.counter("requests").value(), 0u);
  EXPECT_EQ(registry.histogram("latency_ms").snapshot().count, 0u);
}

// -------------------------------------------------------------------- log --

/// Restores the global logger's level and sink on scope exit so tests leave
/// no residue in other suites sharing the process.
struct LoggerGuard {
  ~LoggerGuard() {
    obs::Logger::instance().set_level(obs::LogLevel::Warn);
    obs::Logger::instance().set_sink({});
    obs::Logger::instance().set_time_source({});
  }
};

TEST(Log, SinkCapturesEnabledLevelsOnly) {
  LoggerGuard guard;
  std::vector<obs::LogRecord> records;
  obs::Logger::instance().set_level(obs::LogLevel::Info);
  obs::Logger::instance().set_sink(
      [&](const obs::LogRecord& record) { records.push_back(record); });

  OBS_LOG(Debug) << "filtered out";
  OBS_LOG(Info) << "kept " << 42;
  OBS_LOG(Error) << "also kept";

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, obs::LogLevel::Info);
  EXPECT_EQ(records[0].message, "kept 42");
  EXPECT_GT(records[0].line, 0);
  EXPECT_EQ(records[1].level, obs::LogLevel::Error);
}

TEST(Log, DisabledLevelEvaluatesNoArguments) {
  LoggerGuard guard;
  obs::Logger::instance().set_level(obs::LogLevel::Warn);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "x";
  };
  OBS_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(Log, TimestampsComeFromInjectedSource) {
  LoggerGuard guard;
  std::vector<obs::LogRecord> records;
  obs::Logger::instance().set_level(obs::LogLevel::Info);
  obs::Logger::instance().set_sink(
      [&](const obs::LogRecord& record) { records.push_back(record); });
  obs::Logger::instance().set_time_source([] { return std::uint64_t{1234}; });
  OBS_LOG(Info) << "stamped";
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].timestamp_us, 1234u);
}

// ------------------------------------------------------------------ trace --

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  obs::SpanId id = tracer.begin("noop", "test");
  EXPECT_EQ(id, 0u);
  tracer.arg(id, "k", "v");
  tracer.end(id);
  tracer.instant("noop", "test");
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(Trace, NestingAndManualTime) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  std::uint64_t now = 0;
  tracer.set_time_source([&now] { return now; });

  obs::SpanId outer = tracer.begin("outer", "test");
  now = 10;
  obs::SpanId inner = tracer.begin("inner", "test");
  now = 30;
  tracer.end(inner);
  now = 50;
  tracer.end(outer);

  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner finishes first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, outer);
  EXPECT_EQ(spans[0].start_us, 10u);
  EXPECT_EQ(spans[0].duration_us, 20u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].start_us, 0u);
  EXPECT_EQ(spans[1].duration_us, 50u);
}

TEST(Trace, SiblingsShareAParent) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::ScopedSpan outer(tracer, "outer", "test");
    { obs::ScopedSpan first(tracer, "first", "test"); }
    { obs::ScopedSpan second(tracer, "second", "test"); }
  }
  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "first");
  EXPECT_EQ(spans[1].name, "second");
  EXPECT_EQ(spans[0].parent, spans[2].id);
  EXPECT_EQ(spans[1].parent, spans[2].id);
  EXPECT_EQ(spans[2].parent, 0u);
}

TEST(Trace, ScopedContextStampsSpansAndInstants) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::ScopedContext context("ticket", "17");
    obs::ScopedSpan span(tracer, "work", "test", {{"phase", "verify"}});
    tracer.instant("event", "test");
  }
  { obs::ScopedSpan span(tracer, "outside", "test"); }

  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  // The instant was recorded first (it completes immediately).
  EXPECT_EQ(spans[0].name, "event");
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0], (std::pair<std::string, std::string>{"ticket", "17"}));
  EXPECT_EQ(spans[1].name, "work");
  ASSERT_EQ(spans[1].args.size(), 2u);
  EXPECT_EQ(spans[1].args[0].first, "ticket");
  EXPECT_EQ(spans[1].args[1].first, "phase");
  EXPECT_TRUE(spans[2].args.empty());  // context expired before "outside"
}

TEST(Trace, ThreadPoolWorkersGetOwnTracks) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  util::ThreadPool pool(4);
  std::atomic<int> started{0};
  // Each chunk blocks until all four are running, forcing four distinct
  // worker threads to hold a span simultaneously.
  pool.parallel_for(
      4,
      [&](std::size_t begin, std::size_t end) {
        obs::ScopedSpan span(tracer, "chunk", "test");
        span.arg("begin", std::to_string(begin));
        span.arg("end", std::to_string(end));
        started.fetch_add(1);
        while (started.load() < 4) {
        }
      },
      1);

  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  std::set<std::uint32_t> tids;
  for (const obs::SpanRecord& span : spans) {
    EXPECT_EQ(span.name, "chunk");
    EXPECT_EQ(span.parent, 0u);  // worker-thread stacks are independent
    tids.insert(span.tid);
  }
  EXPECT_EQ(tids.size(), 4u);
}

TEST(Trace, ChromeJsonRoundTrip) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  std::uint64_t now = 100;
  tracer.set_time_source([&now] { return now; });
  obs::SpanId span = tracer.begin("analyze \"quoted\"", "engine", {{"net", "uni\nversity"}});
  now = 250;
  tracer.end(span);
  tracer.instant("audit.command", "audit");

  util::Json doc = util::Json::parse(tracer.to_chrome_json());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);

  const util::Json& complete = events[0];
  EXPECT_EQ(complete.at("name").as_string(), "analyze \"quoted\"");
  EXPECT_EQ(complete.at("cat").as_string(), "engine");
  EXPECT_EQ(complete.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(complete.at("ts").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(complete.at("dur").as_number(), 150.0);
  EXPECT_DOUBLE_EQ(complete.at("pid").as_number(), 1.0);
  EXPECT_EQ(complete.at("args").at("net").as_string(), "uni\nversity");

  const util::Json& instant = events[1];
  EXPECT_EQ(instant.at("name").as_string(), "audit.command");
  EXPECT_DOUBLE_EQ(instant.at("dur").as_number(), 0.0);
}

TEST(Trace, ClearKeepsCollecting) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  { obs::ScopedSpan span(tracer, "one", "test"); }
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  { obs::ScopedSpan span(tracer, "two", "test"); }
  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "two");
}

// ----------------------------------------------- workflow correlation ------

/// Enables the global tracer for one test and restores the disabled default.
struct GlobalTracerGuard {
  GlobalTracerGuard() {
    obs::tracer().clear();
    obs::tracer().set_enabled(true);
  }
  ~GlobalTracerGuard() {
    obs::tracer().set_enabled(false);
    obs::tracer().clear();
  }
};

const obs::SpanRecord* find_span(const std::vector<obs::SpanRecord>& spans,
                                 const std::string& name) {
  for (const obs::SpanRecord& span : spans)
    if (span.name == name) return &span;
  return nullptr;
}

const std::string* find_arg(const obs::SpanRecord& span, const std::string& key) {
  for (const auto& [k, v] : span.args)
    if (k == key) return &v;
  return nullptr;
}

TEST(Telemetry, HeimdallWorkflowSpansCarryAuditTicketId) {
  net::Network production = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(production);
  const scen::IssueSpec* vlan = nullptr;
  std::vector<scen::IssueSpec> issues = scen::enterprise_issues();
  for (const scen::IssueSpec& issue : issues)
    if (issue.key == "vlan") vlan = &issue;
  ASSERT_NE(vlan, nullptr);
  vlan->inject(production);

  enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(policies),
                                   enforce::SimulatedEnclave("v1", "hw"));
  msp::Technician technician;

  // Trace only the workflow itself: setup above (policy mining, enforcer
  // construction) legitimately runs the engine outside any ticket context.
  GlobalTracerGuard guard;
  msp::WorkflowResult result = msp::run_heimdall_workflow(
      production, enforcer, vlan->ticket, vlan->fix_script, technician, vlan->resolved);
  EXPECT_TRUE(result.issue_resolved);

  const std::string ticket_id = std::to_string(vlan->ticket.id);
  std::vector<obs::SpanRecord> spans = obs::tracer().spans();

  // The span tree nests workflow -> verify+schedule -> enforcer -> verifier.
  const obs::SpanRecord* workflow = find_span(spans, "workflow.heimdall");
  const obs::SpanRecord* verify_step = find_span(spans, "workflow.verify+schedule");
  const obs::SpanRecord* enforce_span = find_span(spans, "enforcer.enforce");
  const obs::SpanRecord* verifier = find_span(spans, "enforcer.verify");
  ASSERT_NE(workflow, nullptr);
  ASSERT_NE(verify_step, nullptr);
  ASSERT_NE(enforce_span, nullptr);
  ASSERT_NE(verifier, nullptr);
  EXPECT_EQ(workflow->parent, 0u);
  EXPECT_EQ(verify_step->parent, workflow->id);
  EXPECT_EQ(enforce_span->parent, verify_step->id);
  EXPECT_EQ(verifier->parent, enforce_span->id);

  // Every span begun inside the workflow — including the enforcer's, which
  // never sees a Ticket — carries the ticket ID via the scoped context.
  std::size_t tagged = 0;
  for (const obs::SpanRecord& span : spans) {
    const std::string* ticket = find_arg(span, "ticket");
    ASSERT_NE(ticket, nullptr) << "span without ticket context: " << span.name;
    EXPECT_EQ(*ticket, ticket_id) << "span " << span.name;
    ++tagged;
  }
  EXPECT_GE(tagged, 4u);

  // The audit trail refers to the same ticket, so trace and audit rows can be
  // joined on it.
  bool audit_mentions_ticket = false;
  for (const enforce::AuditEntry& entry : enforcer.audit().entries())
    if (entry.message.find("ticket #" + ticket_id) != std::string::npos)
      audit_mentions_ticket = true;
  EXPECT_TRUE(audit_mentions_ticket);
  EXPECT_TRUE(enforcer.audit_intact());

  // Machine-time metrics accumulated along the way.
  obs::Registry& registry = obs::Registry::global();
  EXPECT_GE(registry.counter("workflow.heimdall_runs").value(), 1u);
  EXPECT_GE(registry.counter("engine.analyses").value(), 1u);
  EXPECT_GE(registry.histogram("workflow.step_ms").snapshot().count, 4u);
  EXPECT_GE(registry.histogram("engine.analyze_ms").snapshot().count, 1u);
}

}  // namespace
}  // namespace heimdall
