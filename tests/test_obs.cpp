// Tests for the telemetry subsystem (src/obs/): histogram bucket/percentile
// math, logger sinks and level filtering, span nesting and ordering under a
// manual time source, per-thread tracks under util::ThreadPool, Chrome
// trace_event JSON round-trips, and the workflow-level guarantee that spans
// carry the same ticket ID the audit trail records.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "enforcer/enforcer.hpp"
#include "msp/workflow.hpp"
#include "obs/flight.hpp"
#include "obs/journal.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/rolling.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "scenarios/enterprise.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace heimdall {
namespace {

// ---------------------------------------------------------------- metrics --

TEST(Metrics, CounterAndGauge) {
  obs::Counter counter;
  counter.add();
  counter.add(4);
  EXPECT_EQ(counter.value(), 5u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);

  obs::Gauge gauge;
  gauge.set(7);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 4);
}

TEST(Metrics, HistogramBucketAssignment) {
  obs::Histogram histogram({1, 2, 5});
  histogram.observe(0.5);  // bucket le=1
  histogram.observe(1.0);  // bucket le=1 (bounds are inclusive upper bounds)
  histogram.observe(1.5);  // bucket le=2
  histogram.observe(3.0);  // bucket le=5
  histogram.observe(7.0);  // overflow

  obs::HistogramSnapshot snapshot = histogram.snapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 13.0);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 13.0 / 5.0);
}

TEST(Metrics, HistogramPercentiles) {
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  obs::Histogram histogram(bounds);
  for (int v = 1; v <= 100; ++v) histogram.observe(v);

  obs::HistogramSnapshot snapshot = histogram.snapshot();
  // Uniform 1..100 over decade buckets: percentile ~= its rank, up to the
  // interpolation error within one bucket.
  EXPECT_NEAR(snapshot.p50(), 50.0, 10.0);
  EXPECT_NEAR(snapshot.p95(), 95.0, 10.0);
  EXPECT_NEAR(snapshot.p99(), 99.0, 10.0);
  EXPECT_LE(snapshot.p50(), snapshot.p95());
  EXPECT_LE(snapshot.p95(), snapshot.p99());

  // Values past the last bound report the largest finite bound.
  obs::Histogram overflow({1.0});
  for (int i = 0; i < 10; ++i) overflow.observe(50.0);
  EXPECT_DOUBLE_EQ(overflow.snapshot().p99(), 1.0);
}

TEST(Metrics, EmptyHistogramIsSane) {
  obs::Histogram histogram({1, 2});
  obs::HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 0.0);
}

TEST(Metrics, RegistryFindsOrCreatesAndExports) {
  obs::Registry registry;
  registry.counter("requests").add(3);
  EXPECT_EQ(&registry.counter("requests"), &registry.counter("requests"));
  registry.gauge("depth").set(2);
  registry.histogram("latency_ms", {1, 10}).observe(4.0);

  obs::MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "requests");
  EXPECT_EQ(snapshot.counters[0].second, 3u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count, 1u);

  // JSON export parses and carries the same numbers.
  util::Json doc = util::Json::parse(registry.to_json());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("requests").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("depth").as_number(), 2.0);
  const util::Json& latency = doc.at("histograms").at("latency_ms");
  EXPECT_DOUBLE_EQ(latency.at("count").as_number(), 1.0);
  EXPECT_FALSE(latency.at("buckets").as_array().empty());

  registry.reset();
  EXPECT_EQ(registry.counter("requests").value(), 0u);
  EXPECT_EQ(registry.histogram("latency_ms").snapshot().count, 0u);
}

// -------------------------------------------------------------------- log --

/// Restores the global logger's level and sink on scope exit so tests leave
/// no residue in other suites sharing the process.
struct LoggerGuard {
  ~LoggerGuard() {
    obs::Logger::instance().set_level(obs::LogLevel::Warn);
    obs::Logger::instance().set_sink({});
    obs::Logger::instance().set_time_source({});
  }
};

TEST(Log, SinkCapturesEnabledLevelsOnly) {
  LoggerGuard guard;
  std::vector<obs::LogRecord> records;
  obs::Logger::instance().set_level(obs::LogLevel::Info);
  obs::Logger::instance().set_sink(
      [&](const obs::LogRecord& record) { records.push_back(record); });

  OBS_LOG(Debug) << "filtered out";
  OBS_LOG(Info) << "kept " << 42;
  OBS_LOG(Error) << "also kept";

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, obs::LogLevel::Info);
  EXPECT_EQ(records[0].message, "kept 42");
  EXPECT_GT(records[0].line, 0);
  EXPECT_EQ(records[1].level, obs::LogLevel::Error);
}

TEST(Log, DisabledLevelEvaluatesNoArguments) {
  LoggerGuard guard;
  obs::Logger::instance().set_level(obs::LogLevel::Warn);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "x";
  };
  OBS_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(Log, TimestampsComeFromInjectedSource) {
  LoggerGuard guard;
  std::vector<obs::LogRecord> records;
  obs::Logger::instance().set_level(obs::LogLevel::Info);
  obs::Logger::instance().set_sink(
      [&](const obs::LogRecord& record) { records.push_back(record); });
  obs::Logger::instance().set_time_source([] { return std::uint64_t{1234}; });
  OBS_LOG(Info) << "stamped";
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].timestamp_us, 1234u);
}

// ------------------------------------------------------------------ trace --

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  obs::SpanId id = tracer.begin("noop", "test");
  EXPECT_EQ(id, 0u);
  tracer.arg(id, "k", "v");
  tracer.end(id);
  tracer.instant("noop", "test");
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(Trace, NestingAndManualTime) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  std::uint64_t now = 0;
  tracer.set_time_source([&now] { return now; });

  obs::SpanId outer = tracer.begin("outer", "test");
  now = 10;
  obs::SpanId inner = tracer.begin("inner", "test");
  now = 30;
  tracer.end(inner);
  now = 50;
  tracer.end(outer);

  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner finishes first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, outer);
  EXPECT_EQ(spans[0].start_us, 10u);
  EXPECT_EQ(spans[0].duration_us, 20u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].start_us, 0u);
  EXPECT_EQ(spans[1].duration_us, 50u);
}

TEST(Trace, SiblingsShareAParent) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::ScopedSpan outer(tracer, "outer", "test");
    { obs::ScopedSpan first(tracer, "first", "test"); }
    { obs::ScopedSpan second(tracer, "second", "test"); }
  }
  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "first");
  EXPECT_EQ(spans[1].name, "second");
  EXPECT_EQ(spans[0].parent, spans[2].id);
  EXPECT_EQ(spans[1].parent, spans[2].id);
  EXPECT_EQ(spans[2].parent, 0u);
}

TEST(Trace, ScopedContextStampsSpansAndInstants) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::ScopedContext context("ticket", "17");
    obs::ScopedSpan span(tracer, "work", "test", {{"phase", "verify"}});
    tracer.instant("event", "test");
  }
  { obs::ScopedSpan span(tracer, "outside", "test"); }

  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  // The instant was recorded first (it completes immediately).
  EXPECT_EQ(spans[0].name, "event");
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0], (std::pair<std::string, std::string>{"ticket", "17"}));
  EXPECT_EQ(spans[1].name, "work");
  ASSERT_EQ(spans[1].args.size(), 2u);
  EXPECT_EQ(spans[1].args[0].first, "ticket");
  EXPECT_EQ(spans[1].args[1].first, "phase");
  EXPECT_TRUE(spans[2].args.empty());  // context expired before "outside"
}

TEST(Trace, ThreadPoolWorkersGetOwnTracks) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  util::ThreadPool pool(4);
  std::atomic<int> started{0};
  // Each chunk blocks until all four are running, forcing four distinct
  // worker threads to hold a span simultaneously.
  pool.parallel_for(
      4,
      [&](std::size_t begin, std::size_t end) {
        obs::ScopedSpan span(tracer, "chunk", "test");
        span.arg("begin", std::to_string(begin));
        span.arg("end", std::to_string(end));
        started.fetch_add(1);
        while (started.load() < 4) {
        }
      },
      1);

  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  std::set<std::uint32_t> tids;
  for (const obs::SpanRecord& span : spans) {
    EXPECT_EQ(span.name, "chunk");
    EXPECT_EQ(span.parent, 0u);  // worker-thread stacks are independent
    tids.insert(span.tid);
  }
  EXPECT_EQ(tids.size(), 4u);
}

TEST(Trace, ChromeJsonRoundTrip) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  std::uint64_t now = 100;
  tracer.set_time_source([&now] { return now; });
  obs::SpanId span = tracer.begin("analyze \"quoted\"", "engine", {{"net", "uni\nversity"}});
  now = 250;
  tracer.end(span);
  tracer.instant("audit.command", "audit");

  util::Json doc = util::Json::parse(tracer.to_chrome_json());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);

  const util::Json& complete = events[0];
  EXPECT_EQ(complete.at("name").as_string(), "analyze \"quoted\"");
  EXPECT_EQ(complete.at("cat").as_string(), "engine");
  EXPECT_EQ(complete.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(complete.at("ts").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(complete.at("dur").as_number(), 150.0);
  EXPECT_DOUBLE_EQ(complete.at("pid").as_number(), 1.0);
  EXPECT_EQ(complete.at("args").at("net").as_string(), "uni\nversity");

  const util::Json& instant = events[1];
  EXPECT_EQ(instant.at("name").as_string(), "audit.command");
  EXPECT_DOUBLE_EQ(instant.at("dur").as_number(), 0.0);
}

TEST(Trace, ClearKeepsCollecting) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  { obs::ScopedSpan span(tracer, "one", "test"); }
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  { obs::ScopedSpan span(tracer, "two", "test"); }
  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "two");
}

TEST(Trace, FinishedRingIsBoundedAndCountsDrops) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(2);
  EXPECT_EQ(tracer.capacity(), 2u);
  for (int i = 0; i < 5; ++i) {
    obs::ScopedSpan span(tracer, "span" + std::to_string(i), "test");
  }
  std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // The ring keeps the newest spans and drops from the front.
  EXPECT_EQ(spans[0].name, "span3");
  EXPECT_EQ(spans[1].name, "span4");
  EXPECT_EQ(tracer.dropped(), 3u);

  // Shrinking the capacity trims retained spans too (and counts them).
  tracer.set_capacity(1);
  EXPECT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.dropped(), 4u);
}

TEST(Trace, OpenSpansAreVisibleUntilEnded) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  obs::SpanId id = tracer.begin("long.operation", "test", {{"ticket", "9"}});
  std::vector<obs::SpanRecord> open = tracer.open_spans();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].name, "long.operation");
  tracer.end(id);
  EXPECT_TRUE(tracer.open_spans().empty());
}

// ---------------------------------------------------------------- journal --

TEST(Journal, DisabledByDefaultAndCheap) {
  obs::EventJournal journal;
  journal.append(obs::EventType::SessionOpen, 1, 1, "t", "d");
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.appended(), 0u);
}

TEST(Journal, AppendSnapshotAndTicketFilter) {
  obs::EventJournal journal;
  journal.set_enabled(true);
  std::uint64_t now = 100;
  journal.set_time_source([&now] { return now; });

  journal.append(obs::EventType::SessionOpen, 7, 1, "tech-1", "opened");
  now = 200;
  journal.append(obs::EventType::QueueDequeue, 7, 1, "service", "batch #1", 55);
  journal.append(obs::EventType::SessionOpen, 8, 2, "tech-2", "opened");

  std::vector<obs::EventRecord> all = journal.snapshot();
  ASSERT_EQ(all.size(), 3u);
  // Stamp order is total even across shards.
  EXPECT_LT(all[0].seq, all[1].seq);
  EXPECT_LT(all[1].seq, all[2].seq);
  EXPECT_EQ(all[0].t_us, 100u);
  EXPECT_EQ(all[1].value_us, 55u);

  std::vector<obs::EventRecord> mine = journal.for_ticket(7);
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0].type, obs::EventType::SessionOpen);
  EXPECT_EQ(mine[1].type, obs::EventType::QueueDequeue);

  // JSON export round-trips through the parser with the typed fields.
  util::Json doc = util::Json::parse(journal.to_json());
  ASSERT_EQ(doc.at("events").as_array().size(), 3u);
  EXPECT_EQ(doc.at("events").as_array()[0].at("type").as_string(), "session_open");
  EXPECT_DOUBLE_EQ(doc.at("events").as_array()[1].at("value_us").as_number(), 55.0);
  EXPECT_DOUBLE_EQ(doc.at("appended").as_number(), 3.0);
}

TEST(Journal, RingOverwritesOldestAndCountsDrops) {
  obs::EventJournal journal(8);  // one slot per shard; this thread uses one
  journal.set_enabled(true);
  for (int i = 0; i < 5; ++i)
    journal.append(obs::EventType::QueueEnqueue, i + 1, 0, "t", "d");
  EXPECT_EQ(journal.appended(), 5u);
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal.dropped(), 4u);
  std::vector<obs::EventRecord> kept = journal.snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].ticket, 5);  // the newest survives
}

TEST(Journal, AppendInContextResolvesTicketAndSession) {
  obs::EventJournal journal;
  journal.set_enabled(true);
  {
    obs::ScopedContextFrame frame({{"session", "12"}, {"ticket", "34"}, {"actor", "tech-2"}});
    journal.append_in_context(obs::EventType::VerifyVerdict, "enforcer", "1 applied", 17);
  }
  journal.append_in_context(obs::EventType::AuditSeal, "enforcer", "sealed");

  std::vector<obs::EventRecord> events = journal.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ticket, 34);
  EXPECT_EQ(events[0].session, 12u);
  EXPECT_EQ(events[0].value_us, 17u);
  // Outside the frame there is no context: unscoped event.
  EXPECT_EQ(events[1].ticket, 0);
  EXPECT_EQ(events[1].session, 0u);
}

// ---------------------------------------------------------------- rolling --

TEST(Rolling, WindowForgetsExpiredSlices) {
  obs::RollingHistogram histogram({1, 10, 100}, /*window_us=*/600, /*slices=*/6);
  std::uint64_t now = 0;
  histogram.set_time_source([&now] { return now; });

  histogram.observe(5.0);
  histogram.observe(50.0);
  obs::HistogramSnapshot live = histogram.snapshot();
  EXPECT_EQ(live.count, 2u);
  EXPECT_DOUBLE_EQ(live.sum, 55.0);

  // Half a window later both observations are still in view; a full window
  // later they have expired.
  now = 300;
  EXPECT_EQ(histogram.snapshot().count, 2u);
  now = 2000;
  EXPECT_EQ(histogram.snapshot().count, 0u);

  // New observations land in the fresh window.
  histogram.observe(3.0);
  EXPECT_EQ(histogram.snapshot().count, 1u);
}

TEST(Rolling, RegistryFindsOrCreatesAndExports) {
  obs::RollingRegistry registry;
  registry.histogram("queue_wait_ms").observe(4.0);
  EXPECT_EQ(&registry.histogram("queue_wait_ms"), &registry.histogram("queue_wait_ms"));

  util::Json doc = util::Json::parse(registry.to_json());
  EXPECT_DOUBLE_EQ(doc.at("queue_wait_ms").at("count").as_number(), 1.0);
  EXPECT_GT(doc.at("queue_wait_ms").at("window_us").as_number(), 0.0);
}

TEST(Rolling, SloTrackerCountsBreaches) {
  obs::SloTracker tracker;
  tracker.define("enforce_ms", 10.0);

  EXPECT_FALSE(tracker.observe("enforce_ms", 5.0));
  EXPECT_TRUE(tracker.observe("enforce_ms", 25.0));
  EXPECT_TRUE(tracker.observe("enforce_ms", 11.0));
  // Unknown objectives are ignored, not errors.
  EXPECT_FALSE(tracker.observe("unconfigured", 1e9));

  std::vector<obs::SloStatus> status = tracker.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].samples, 3u);
  EXPECT_EQ(status[0].breaches, 2u);
  EXPECT_DOUBLE_EQ(status[0].last, 11.0);
  EXPECT_FALSE(status[0].healthy());
  EXPECT_EQ(tracker.total_breaches(), 2u);

  util::Json doc = util::Json::parse(tracker.to_json());
  ASSERT_EQ(doc.as_array().size(), 1u);
  EXPECT_EQ(doc.as_array()[0].at("name").as_string(), "enforce_ms");
  EXPECT_DOUBLE_EQ(doc.as_array()[0].at("breaches").as_number(), 2.0);
  EXPECT_FALSE(doc.as_array()[0].at("healthy").as_bool());
}

// ----------------------------------------------------------------- flight --

/// Restores the global journal + flight recorder after a test that uses them
/// (both are process-global and default-disabled).
struct FlightGuard {
  ~FlightGuard() {
    obs::FlightRecorder::global().set_enabled(false);
    obs::FlightRecorder::global().reset();
    obs::EventJournal::global().set_enabled(false);
    obs::EventJournal::global().clear();
  }
};

TEST(Flight, DumpCarriesOffendingTicketEvents) {
  FlightGuard guard;
  obs::EventJournal& journal = obs::EventJournal::global();
  journal.clear();
  journal.set_enabled(true);
  journal.append(obs::EventType::SessionOpen, 42, 9, "tech-1", "opened");
  journal.append(obs::EventType::Quarantine, 42, 9, "enforcer", "policy violation");
  journal.append(obs::EventType::SessionOpen, 43, 10, "tech-2", "opened");

  obs::FlightRecorder::Options options;  // no output_dir: memory only
  options.last_events = 16;
  obs::FlightRecorder::global().reset();
  obs::FlightRecorder::global().configure(options);
  std::string dump = obs::FlightRecorder::global().trigger("quarantine", 42);
  ASSERT_FALSE(dump.empty());
  EXPECT_EQ(obs::FlightRecorder::global().dumps(), 1u);
  EXPECT_EQ(obs::FlightRecorder::global().last_dump(), dump);

  util::Json doc = util::Json::parse(dump);
  EXPECT_EQ(doc.at("reason").as_string(), "quarantine");
  EXPECT_DOUBLE_EQ(doc.at("ticket").as_number(), 42.0);
  // The ticket trail has exactly the offender's events; the recent-events
  // tail sees everything.
  ASSERT_EQ(doc.at("ticket_events").as_array().size(), 2u);
  EXPECT_EQ(doc.at("ticket_events").as_array()[1].at("type").as_string(), "quarantine");
  EXPECT_GE(doc.at("recent_events").as_array().size(), 3u);
  EXPECT_TRUE(doc.at("metrics").is_object());
  EXPECT_TRUE(doc.at("slo").is_array());

  // The capture itself is journaled, closing the loop for obs_report.
  std::vector<obs::EventRecord> trail = journal.for_ticket(42);
  ASSERT_EQ(trail.size(), 3u);
  EXPECT_EQ(trail[2].type, obs::EventType::FlightDump);
}

TEST(Flight, DumpCapSuppressesFloods) {
  FlightGuard guard;
  obs::FlightRecorder::Options options;
  options.max_dumps = 2;
  obs::FlightRecorder::global().reset();
  obs::FlightRecorder::global().configure(options);
  EXPECT_FALSE(obs::FlightRecorder::global().trigger("one", 0).empty());
  EXPECT_FALSE(obs::FlightRecorder::global().trigger("two", 0).empty());
  EXPECT_TRUE(obs::FlightRecorder::global().trigger("three", 0).empty());
  EXPECT_EQ(obs::FlightRecorder::global().dumps(), 2u);
  EXPECT_EQ(obs::FlightRecorder::global().suppressed(), 1u);
}

// ------------------------------------------------------------- exposition --

TEST(Telemetry, PrometheusExposition) {
  obs::Registry registry;
  registry.counter("obs.journal_dropped").add(3);
  registry.gauge("service.queue_depth").set(7);
  registry.histogram("enforce_ms", {1, 10}).observe(0.5);
  registry.histogram("enforce_ms").observe(99.0);

  std::string text = obs::export_prometheus(registry);
  EXPECT_NE(text.find("# TYPE obs_journal_dropped counter\n"), std::string::npos);
  EXPECT_NE(text.find("obs_journal_dropped 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE service_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("service_queue_depth 7\n"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("enforce_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("enforce_ms_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("enforce_ms_count 2\n"), std::string::npos);
}

TEST(Telemetry, RegistryExportsGauges) {
  obs::Registry registry;
  registry.gauge("service.active_sessions").set(5);
  registry.gauge("service.cache_hit_rate").set(-1);

  util::Json doc = util::Json::parse(registry.to_json());
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("service.active_sessions").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("service.cache_hit_rate").as_number(), -1.0);
  std::string text = registry.to_text();
  EXPECT_NE(text.find("service.active_sessions"), std::string::npos);
}

// ----------------------------------------------- workflow correlation ------

/// Enables the global tracer for one test and restores the disabled default.
struct GlobalTracerGuard {
  GlobalTracerGuard() {
    obs::tracer().clear();
    obs::tracer().set_enabled(true);
  }
  ~GlobalTracerGuard() {
    obs::tracer().set_enabled(false);
    obs::tracer().clear();
  }
};

const obs::SpanRecord* find_span(const std::vector<obs::SpanRecord>& spans,
                                 const std::string& name) {
  for (const obs::SpanRecord& span : spans)
    if (span.name == name) return &span;
  return nullptr;
}

const std::string* find_arg(const obs::SpanRecord& span, const std::string& key) {
  for (const auto& [k, v] : span.args)
    if (k == key) return &v;
  return nullptr;
}

TEST(Telemetry, HeimdallWorkflowSpansCarryAuditTicketId) {
  net::Network production = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(production);
  const scen::IssueSpec* vlan = nullptr;
  std::vector<scen::IssueSpec> issues = scen::enterprise_issues();
  for (const scen::IssueSpec& issue : issues)
    if (issue.key == "vlan") vlan = &issue;
  ASSERT_NE(vlan, nullptr);
  vlan->inject(production);

  enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(policies),
                                   enforce::SimulatedEnclave("v1", "hw"));
  msp::Technician technician;

  // Trace only the workflow itself: setup above (policy mining, enforcer
  // construction) legitimately runs the engine outside any ticket context.
  GlobalTracerGuard guard;
  msp::WorkflowResult result = msp::run_heimdall_workflow(
      production, enforcer, vlan->ticket, vlan->fix_script, technician, vlan->resolved);
  EXPECT_TRUE(result.issue_resolved);

  const std::string ticket_id = std::to_string(vlan->ticket.id);
  std::vector<obs::SpanRecord> spans = obs::tracer().spans();

  // The span tree nests workflow -> verify+schedule -> enforcer -> verifier.
  const obs::SpanRecord* workflow = find_span(spans, "workflow.heimdall");
  const obs::SpanRecord* verify_step = find_span(spans, "workflow.verify+schedule");
  const obs::SpanRecord* enforce_span = find_span(spans, "enforcer.enforce");
  const obs::SpanRecord* verifier = find_span(spans, "enforcer.verify");
  ASSERT_NE(workflow, nullptr);
  ASSERT_NE(verify_step, nullptr);
  ASSERT_NE(enforce_span, nullptr);
  ASSERT_NE(verifier, nullptr);
  EXPECT_EQ(workflow->parent, 0u);
  EXPECT_EQ(verify_step->parent, workflow->id);
  EXPECT_EQ(enforce_span->parent, verify_step->id);
  EXPECT_EQ(verifier->parent, enforce_span->id);

  // Every span begun inside the workflow — including the enforcer's, which
  // never sees a Ticket — carries the ticket ID via the scoped context.
  std::size_t tagged = 0;
  for (const obs::SpanRecord& span : spans) {
    const std::string* ticket = find_arg(span, "ticket");
    ASSERT_NE(ticket, nullptr) << "span without ticket context: " << span.name;
    EXPECT_EQ(*ticket, ticket_id) << "span " << span.name;
    ++tagged;
  }
  EXPECT_GE(tagged, 4u);

  // The audit trail refers to the same ticket, so trace and audit rows can be
  // joined on it.
  bool audit_mentions_ticket = false;
  for (const enforce::AuditEntry& entry : enforcer.audit().entries())
    if (entry.message.find("ticket #" + ticket_id) != std::string::npos)
      audit_mentions_ticket = true;
  EXPECT_TRUE(audit_mentions_ticket);
  EXPECT_TRUE(enforcer.audit_intact());

  // Machine-time metrics accumulated along the way.
  obs::Registry& registry = obs::Registry::global();
  EXPECT_GE(registry.counter("workflow.heimdall_runs").value(), 1u);
  EXPECT_GE(registry.counter("engine.analyses").value(), 1u);
  EXPECT_GE(registry.histogram("workflow.step_ms").snapshot().count, 4u);
  EXPECT_GE(registry.histogram("engine.analyze_ms").snapshot().count, 1u);
}

}  // namespace
}  // namespace heimdall
