// Unit tests for policy mining and verification.
#include <gtest/gtest.h>

#include "scenarios/enterprise.hpp"
#include "analysis/engine.hpp"
#include "spec/mine.hpp"
#include "spec/verify.hpp"

namespace heimdall::spec {
namespace {

using namespace heimdall::net;

TEST(Policy, IdsAndRendering) {
  Policy reach{PolicyType::Reachability, DeviceId("h1"), DeviceId("h2"), DeviceId{}};
  EXPECT_EQ(reach.id(), "reach(h1,h2)");
  EXPECT_EQ(reach.to_string(), "h1 must reach h2");

  Policy isolate{PolicyType::Isolation, DeviceId("h1"), DeviceId("h8"), DeviceId{}};
  EXPECT_EQ(isolate.id(), "isolate(h1,h8)");

  Policy waypoint{PolicyType::Waypoint, DeviceId("h1"), DeviceId("h7"), DeviceId("r9")};
  EXPECT_EQ(waypoint.id(), "waypoint(h1,h7,r9)");
  EXPECT_NE(waypoint.to_string().find("traverse r9"), std::string::npos);
}

TEST(Mine, ReachabilityAndIsolationFromEnterprise) {
  Network network = scen::build_enterprise();
  analysis::Engine engine;
  std::vector<Policy> policies = spec::mine_policies(*engine.analyze(network).reachability);

  auto find_policy = [&](const std::string& id) {
    for (const Policy& policy : policies)
      if (policy.id() == id) return true;
    return false;
  };
  EXPECT_TRUE(find_policy("reach(h1,h4)"));
  EXPECT_TRUE(find_policy("reach(h1,h7)"));
  EXPECT_TRUE(find_policy("isolate(h1,h8)"));
  EXPECT_TRUE(find_policy("isolate(h2,h7)"));
  // h7 -> h8 stays inside the DMZ: reachable, not isolated.
  EXPECT_TRUE(find_policy("reach(h7,h8)"));
  EXPECT_FALSE(find_policy("isolate(h7,h8)"));
}

TEST(Mine, WaypointPolicies) {
  Network network = scen::build_enterprise();
  analysis::Engine engine;
  MineOptions options;
  options.include_reachability = false;
  options.include_isolation = false;
  options.waypoint_candidates = {DeviceId("r9")};
  std::vector<Policy> policies = spec::mine_policies(*engine.analyze(network).reachability, options);
  ASSERT_FALSE(policies.empty());
  for (const Policy& policy : policies) {
    EXPECT_EQ(policy.type, PolicyType::Waypoint);
    EXPECT_EQ(policy.waypoint, DeviceId("r9"));
    // Only DMZ-bound traffic traverses r9.
    EXPECT_TRUE(policy.dst == DeviceId("h7") || policy.dst == DeviceId("h8") ||
                policy.src == DeviceId("h7") || policy.src == DeviceId("h8"))
        << policy.id();
  }
}

TEST(Mine, BudgetKeepsIntentPoliciesFirst) {
  Network network = scen::build_enterprise();
  analysis::Engine engine;
  analysis::Snapshot snapshot = engine.analyze(network);

  std::vector<Policy> uncapped = spec::mine_policies(*snapshot.reachability);
  std::size_t isolation_count = 0;
  for (const Policy& policy : uncapped)
    if (policy.type == PolicyType::Isolation) ++isolation_count;
  ASSERT_GT(isolation_count, 0u);

  MineOptions options;
  options.max_policies = isolation_count + 2;
  std::vector<Policy> capped = spec::mine_policies(*snapshot.reachability, options);
  EXPECT_EQ(capped.size(), isolation_count + 2);
  std::size_t capped_isolation = 0;
  for (const Policy& policy : capped)
    if (policy.type == PolicyType::Isolation) ++capped_isolation;
  EXPECT_EQ(capped_isolation, isolation_count);  // every isolation survived
}

TEST(Mine, Deterministic) {
  Network network = scen::build_enterprise();
  analysis::Engine engine;
  const dp::ReachabilityMatrix& matrix = *engine.analyze(network).reachability;
  EXPECT_EQ(spec::mine_policies(matrix), spec::mine_policies(matrix));
}

TEST(Verify, CleanNetworkPasses) {
  Network network = scen::build_enterprise();
  PolicyVerifier verifier(scen::enterprise_policies(network));
  VerificationReport report = verifier.verify_network(network);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.checked, scen::kEnterprisePolicyBudget);
}

TEST(Verify, DetectsReachabilityBreak) {
  Network network = scen::build_enterprise();
  PolicyVerifier verifier(scen::enterprise_policies(network));
  // Break the VLAN: h2 loses connectivity.
  network.device(DeviceId("r7")).interface(InterfaceId("Fa0/2")).access_vlan = 10;
  VerificationReport report = verifier.verify_network(network);
  EXPECT_FALSE(report.ok());
  for (const Violation& violation : report.violations) {
    // Connectivity loss trips reachability policies and waypoint policies
    // whose pair can no longer deliver; isolation policies cannot trip.
    EXPECT_NE(violation.policy.type, PolicyType::Isolation) << violation.policy.id();
    EXPECT_TRUE(violation.policy.src == DeviceId("h2") || violation.policy.dst == DeviceId("h2"))
        << violation.policy.id();
  }
}

TEST(Verify, DetectsIsolationBreak) {
  Network network = scen::build_enterprise();
  // Pin the isolation policy explicitly so this test is self-contained.
  PolicyVerifier verifier({Policy{PolicyType::Isolation, DeviceId("h2"), DeviceId("h8"),
                                  DeviceId{}}});
  EXPECT_TRUE(verifier.verify_network(network).ok());

  // Malicious permit lets h2 into the sensitive store.
  Device& r9 = network.device(DeviceId("r9"));
  AclEntry entry;
  entry.action = AclEntry::Action::Permit;
  entry.src = Ipv4Prefix::parse("10.0.20.0/24");
  entry.dst = Ipv4Prefix::parse("10.0.8.0/24");
  r9.find_acl("DMZ_IN")->entries.insert(r9.find_acl("DMZ_IN")->entries.begin(), entry);

  VerificationReport report = verifier.verify_network(network);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].policy.id(), "isolate(h2,h8)");
}

TEST(Verify, DetectsWaypointBypass) {
  // Build a diamond where traffic normally crosses the waypoint, then open
  // a bypass link and verify the waypoint policy trips.
  Network network = scen::build_enterprise();
  PolicyVerifier verifier({Policy{PolicyType::Waypoint, DeviceId("h1"), DeviceId("h7"),
                                  DeviceId("r9")}});
  EXPECT_TRUE(verifier.verify_network(network).ok());

  // Break reachability to h7 entirely: the waypoint policy also reports.
  network.device(DeviceId("r9")).interface(InterfaceId("Gi0/1")).shutdown = true;
  VerificationReport report = verifier.verify_network(network);
  EXPECT_FALSE(report.ok());
}

TEST(Verify, SkipsPoliciesWithAbsentEndpoints) {
  Network network = scen::build_enterprise();
  PolicyVerifier verifier({Policy{PolicyType::Reachability, DeviceId("ghost-a"),
                                  DeviceId("ghost-b"), DeviceId{}}});
  VerificationReport report = verifier.verify_network(network);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.checked, 0u);
}

TEST(Verify, ViolatedIdsSorted) {
  Network network = scen::build_enterprise();
  PolicyVerifier verifier(
      {Policy{PolicyType::Reachability, DeviceId("h2"), DeviceId("h4"), DeviceId{}},
       Policy{PolicyType::Reachability, DeviceId("h2"), DeviceId("h1"), DeviceId{}}});
  network.device(DeviceId("r7")).interface(InterfaceId("Fa0/2")).access_vlan = 10;
  VerificationReport report = verifier.verify_network(network);
  auto ids = report.violated_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

}  // namespace
}  // namespace heimdall::spec
