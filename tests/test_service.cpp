// Tests for the enforcement service: ticket-session lifecycle, artifact
// pooling, deterministic batching, the sharded audit sink, and the
// stress-level guarantee that a concurrent run is indistinguishable from a
// serialized oracle replay of its batch journal.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "enforcer/audit_sink.hpp"
#include "scenarios/adversary.hpp"
#include "obs/flight.hpp"
#include "obs/journal.hpp"
#include "obs/rolling.hpp"
#include "scenarios/enterprise.hpp"
#include "service/load.hpp"
#include "service/manager.hpp"
#include "twin/twin.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace heimdall::service {
namespace {

using net::DeviceId;

msp::Ticket acl_ticket(int id, const std::string& router, const std::string& description) {
  msp::Ticket ticket;
  ticket.id = id;
  ticket.task = priv::TaskClass::AclChange;
  ticket.description = description;
  ticket.affected = {DeviceId(router)};
  return ticket;
}

void expect_reports_equal(const enforce::QuarantineReport& actual,
                          const enforce::QuarantineReport& oracle) {
  EXPECT_EQ(actual.applied_changes, oracle.applied_changes);
  ASSERT_EQ(actual.quarantined.size(), oracle.quarantined.size());
  for (std::size_t i = 0; i < actual.quarantined.size(); ++i) {
    EXPECT_EQ(actual.quarantined[i].first, oracle.quarantined[i].first) << i;
    EXPECT_EQ(actual.quarantined[i].second, oracle.quarantined[i].second) << i;
  }
  EXPECT_EQ(actual.applied_any, oracle.applied_any);
}

/// Replays the manager's batch journal serially (one enforce_with_quarantine
/// per submission, FIFO) against a fresh enforcer on the original
/// production network. Returns the per-session reports plus the final
/// network the serialized world ends in.
struct OracleReplay {
  std::map<std::uint64_t, enforce::QuarantineReport> reports;
  net::Network production;
};

OracleReplay replay_journal(net::Network production, const std::vector<spec::Policy>& policies,
                            const std::vector<BatchRecord>& journal) {
  OracleReplay replay{{}, std::move(production)};
  enforce::PolicyEnforcer oracle(spec::PolicyVerifier(policies),
                                 enforce::SimulatedEnclave("oracle", "hw"));
  util::VirtualClock clock;
  for (const BatchRecord& batch : journal) {
    for (const BatchRecord::Entry& entry : batch.entries) {
      replay.reports[entry.session_id] = oracle.enforce_with_quarantine(
          replay.production, entry.changes, entry.privileges, clock, entry.actor,
          entry.approvals);
    }
  }
  return replay;
}

// ------------------------------------------------------------- lifecycle --

TEST(Session, LifecycleOpenSubmitClose) {
  SessionManager manager(scen::build_enterprise(), scen::enterprise_policies(scen::build_enterprise()));
  auto session = manager.open(acl_ticket(1, "r1", "harden r1"), "alice");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->state(), TicketSession::State::Open);
  EXPECT_EQ(session->actor(), "alice");

  session->run("acl r1 create T1");
  session->run("acl r1 T1 add deny ip 198.51.100.0 0.0.0.255 192.0.2.0 0.0.0.255");
  EXPECT_FALSE(session->pending_changes().empty());

  SubmitOutcome outcome = session->submit().get();
  EXPECT_EQ(session->state(), TicketSession::State::Submitted);
  EXPECT_TRUE(outcome.report.applied_any);
  EXPECT_TRUE(outcome.report.quarantined.empty());
  EXPECT_TRUE(outcome.stale_devices.empty());
  EXPECT_GE(outcome.batch_size, 1u);

  // One submission per session; close() is terminal and idempotent.
  EXPECT_THROW(session->submit(), util::Error);
  session->close();
  EXPECT_EQ(session->state(), TicketSession::State::Closed);
  session->close();
  EXPECT_EQ(session->state(), TicketSession::State::Closed);
  EXPECT_THROW(session->submit(), util::Error);

  manager.drain();
  EXPECT_TRUE(manager.enforcer().audit_intact());
  ServiceStats stats = manager.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.submissions, 1u);
}

TEST(Session, AppliedChangeLandsInProduction) {
  net::Network original = scen::build_enterprise();
  SessionManager manager(original, scen::enterprise_policies(original));
  auto session = manager.open(acl_ticket(2, "r2", "new filter"), "bob");
  session->run("acl r2 create EDGE2");
  SubmitOutcome outcome = session->submit().get();
  session->close();
  ASSERT_TRUE(outcome.report.applied_any);
  net::Network now = manager.production_copy();
  EXPECT_NE(now, original);
  bool found = false;
  for (const net::Acl& acl : now.device(DeviceId("r2")).acls()) found |= acl.name == "EDGE2";
  EXPECT_TRUE(found);
}

TEST(Session, QuarantinesInsiderSubmission) {
  net::Network original = scen::build_enterprise();
  SessionManager manager(original, scen::enterprise_policies(original));
  auto session = manager.open(acl_ticket(3, "r9", "emergency DMZ access"), "mallory");
  // The twin accepts this (no policies inside the twin); the enforcer must
  // quarantine it at submit time.
  session->run("acl r9 DMZ_IN add 0 permit ip 10.0.20.0 0.0.0.255 10.0.8.0 0.0.0.255");
  SubmitOutcome outcome = session->submit().get();
  session->close();
  EXPECT_FALSE(outcome.report.applied_any);
  ASSERT_EQ(outcome.report.quarantined.size(), 1u);
  EXPECT_EQ(outcome.report.quarantined[0].second.rfind("policy: ", 0), 0u);
  EXPECT_EQ(manager.production_copy(), original);
  manager.drain();
  EXPECT_TRUE(manager.enforcer().audit_intact());
}

// --------------------------------------------------------- artifact cache --

TEST(Artifacts, EquivalentTicketsShareCachedArtifacts) {
  SessionManager manager(scen::build_enterprise(),
                         scen::enterprise_policies(scen::build_enterprise()));
  // Same content, different ticket ids: the cache keys on content, not id.
  auto first = manager.open(acl_ticket(10, "r3", "harden r3"), "alice");
  auto second = manager.open(acl_ticket(11, "r3", "harden r3"), "bob");
  EXPECT_FALSE(first->from_cache());
  EXPECT_TRUE(second->from_cache());
  ServiceStats stats = manager.stats();
  EXPECT_EQ(stats.artifact_misses, 1u);
  EXPECT_EQ(stats.artifact_hits, 1u);

  // Different content -> fresh build.
  auto third = manager.open(acl_ticket(12, "r4", "harden r4"), "carol");
  EXPECT_FALSE(third->from_cache());

  // The pooled artifacts must still give each session its own twin.
  first->run("acl r3 create A1");
  EXPECT_EQ(first->pending_changes().size(), 1u);
  EXPECT_TRUE(second->pending_changes().empty());
}

TEST(Artifacts, ProductionChangeInvalidatesCache) {
  SessionManager manager(scen::build_enterprise(),
                         scen::enterprise_policies(scen::build_enterprise()));
  auto first = manager.open(acl_ticket(20, "r5", "tune r5"), "alice");
  first->run("acl r5 create EDGE5");
  first->submit().get();
  first->close();
  // Production changed since the artifacts were sliced; an equivalent
  // ticket must not reuse them (the cache keys on the production digest).
  auto second = manager.open(acl_ticket(21, "r5", "tune r5"), "bob");
  EXPECT_FALSE(second->from_cache());
}

TEST(Artifacts, TicketContentHashIgnoresIdAndState) {
  msp::Ticket a = acl_ticket(1, "r1", "same work");
  msp::Ticket b = acl_ticket(999, "r1", "same work");
  b.state = msp::TicketState::Resolved;
  EXPECT_EQ(twin::ticket_content_hash(a), twin::ticket_content_hash(b));
  msp::Ticket c = acl_ticket(1, "r1", "different work");
  EXPECT_NE(twin::ticket_content_hash(a), twin::ticket_content_hash(c));
  msp::Ticket d = acl_ticket(1, "r2", "same work");
  EXPECT_NE(twin::ticket_content_hash(a), twin::ticket_content_hash(d));
}

// ---------------------------------------------------- deterministic batch --

TEST(Queue, PausedQueueFormsOneBatchAndMatchesOracle) {
  net::Network original = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(original);
  ServiceOptions options;
  options.keep_journal = true;
  SessionManager manager(original, policies, options);
  manager.set_queue_paused(true);

  auto benign1 = manager.open(acl_ticket(1, "r1", "harden r1"), "alice");
  auto benign2 = manager.open(acl_ticket(2, "r3", "harden r3"), "bob");
  auto insider = manager.open(acl_ticket(3, "r9", "open the DMZ"), "mallory");
  benign1->run("acl r1 create EDGE1");
  benign2->run("acl r3 create EDGE3");
  insider->run("acl r9 DMZ_IN add 0 permit ip 10.0.20.0 0.0.0.255 10.0.8.0 0.0.0.255");

  std::future<SubmitOutcome> f1 = benign1->submit();
  std::future<SubmitOutcome> f2 = benign2->submit();
  std::future<SubmitOutcome> f3 = insider->submit();
  manager.set_queue_paused(false);
  SubmitOutcome o1 = f1.get();
  SubmitOutcome o2 = f2.get();
  SubmitOutcome o3 = f3.get();
  manager.drain();

  // All three submissions were staged while the worker slept -> one batch.
  EXPECT_EQ(o1.batch_id, o2.batch_id);
  EXPECT_EQ(o1.batch_id, o3.batch_id);
  EXPECT_EQ(o1.batch_size, 3u);
  EXPECT_TRUE(o1.report.applied_any);
  EXPECT_TRUE(o2.report.applied_any);
  EXPECT_FALSE(o3.report.applied_any);
  ASSERT_EQ(o3.report.quarantined.size(), 1u);

  ASSERT_EQ(manager.journal().size(), 1u);
  EXPECT_EQ(manager.journal()[0].entries.size(), 3u);
  OracleReplay oracle = replay_journal(original, policies, manager.journal());
  expect_reports_equal(o1.report, oracle.reports.at(benign1->id()));
  expect_reports_equal(o2.report, oracle.reports.at(benign2->id()));
  expect_reports_equal(o3.report, oracle.reports.at(insider->id()));
  EXPECT_EQ(manager.production_copy(), oracle.production);
  EXPECT_TRUE(manager.enforcer().audit_intact());
}

TEST(Queue, StaleTwinIsReportedButVerdictIsSound) {
  net::Network original = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(original);
  SessionManager manager(original, policies);
  // Session A slices r6, then production changes under it (session B lands
  // an r6 change first). A's outcome must flag the stale slice device.
  auto stale = manager.open(acl_ticket(1, "r6", "tune r6"), "alice");
  auto fresh = manager.open(acl_ticket(2, "r6", "other r6 work"), "bob");
  fresh->run("acl r6 create EDGE6");
  SubmitOutcome first = fresh->submit().get();
  ASSERT_TRUE(first.report.applied_any);

  stale->run("acl r6 create EDGE6B");
  SubmitOutcome second = stale->submit().get();
  EXPECT_TRUE(second.report.applied_any);
  ASSERT_EQ(second.stale_devices.size(), 1u);
  EXPECT_EQ(second.stale_devices[0], DeviceId("r6"));
}

// ------------------------------------------------------------- audit sink --

TEST(AuditSink, ConcurrentRecordsFlushInStampOrder) {
  enforce::AuditSink sink(4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i)
        sink.record(t, "writer-" + std::to_string(t), enforce::AuditCategory::Command,
                    std::to_string(i));
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(sink.pending(), static_cast<std::size_t>(kThreads * kPerThread));

  enforce::AuditLog chain;
  EXPECT_EQ(sink.flush_into(chain), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(sink.pending(), 0u);
  ASSERT_EQ(chain.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_TRUE(chain.verify_chain());

  // The stamp order is a total order consistent with every writer's program
  // order: each writer's messages must appear in increasing sequence.
  std::map<std::string, int> last_seen;
  for (const enforce::AuditEntry& entry : chain.entries()) {
    auto it = last_seen.find(entry.actor);
    int sequence = std::stoi(entry.message);
    if (it != last_seen.end()) EXPECT_GT(sequence, it->second) << entry.actor;
    last_seen[entry.actor] = sequence;
  }
  EXPECT_EQ(last_seen.size(), static_cast<std::size_t>(kThreads));

  // A second flush with nothing staged is a no-op.
  EXPECT_EQ(sink.flush_into(chain), 0u);
  EXPECT_EQ(chain.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

// ----------------------------------------------------------------- stress --

TEST(Stress, ConcurrentSessionsMatchSerializedOracleReplay) {
  // Many technician threads, interleaved submissions, a violating ticket in
  // the mix — afterwards the batch journal replayed serially against a
  // fresh enforcer must reproduce every report and the exact production
  // network, and the audit chain must still verify.
  net::Network original = scen::build_enterprise();
  std::vector<spec::Policy> policies = scen::enterprise_policies(original);
  ServiceOptions options;
  options.keep_journal = true;
  SessionManager manager(original, policies, options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kTickets = 96;
  const std::vector<std::string> routers = {"r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8"};
  std::atomic<std::size_t> next_ticket{0};
  std::mutex outcomes_mutex;
  std::map<std::uint64_t, SubmitOutcome> outcomes;

  std::vector<std::thread> technicians;
  for (std::size_t t = 0; t < kThreads; ++t) {
    technicians.emplace_back([&] {
      for (;;) {
        std::size_t n = next_ticket.fetch_add(1);
        if (n >= kTickets) return;
        bool violating = n % 12 == 5;
        const std::string router = violating ? "r9" : routers[n % routers.size()];
        auto session = manager.open(
            acl_ticket(static_cast<int>(n + 1), router,
                       violating ? "open the DMZ" : "stress filter " + std::to_string(n)),
            "tech-" + std::to_string(n));
        if (violating) {
          session->run("acl r9 DMZ_IN add 0 permit ip 10.0.20.0 0.0.0.255 10.0.8.0 0.0.0.255");
        } else {
          std::string acl = "ST" + std::to_string(n);
          session->run("acl " + router + " create " + acl);
          session->run("acl " + router + " " + acl +
                       " add deny ip 198.51.100.0 0.0.0.255 192.0.2.0 0.0.0.255");
        }
        SubmitOutcome outcome = session->submit().get();
        session->close();
        std::lock_guard<std::mutex> lock(outcomes_mutex);
        outcomes.emplace(session->id(), std::move(outcome));
      }
    });
  }
  for (std::thread& technician : technicians) technician.join();
  manager.drain();

  ASSERT_EQ(outcomes.size(), kTickets);
  EXPECT_TRUE(manager.enforcer().audit_intact());
  ServiceStats stats = manager.stats();
  EXPECT_EQ(stats.submissions, kTickets);
  EXPECT_GE(stats.batches, 1u);

  std::size_t journaled = 0;
  for (const BatchRecord& batch : manager.journal()) journaled += batch.entries.size();
  ASSERT_EQ(journaled, kTickets);

  OracleReplay oracle = replay_journal(original, policies, manager.journal());
  std::size_t applied = 0;
  std::size_t quarantined = 0;
  for (const auto& [session_id, outcome] : outcomes) {
    SCOPED_TRACE("session " + std::to_string(session_id));
    expect_reports_equal(outcome.report, oracle.reports.at(session_id));
    applied += outcome.report.applied_changes.size();
    quarantined += outcome.report.quarantined.size();
  }
  EXPECT_EQ(quarantined, kTickets / 12);
  EXPECT_EQ(applied, kTickets - kTickets / 12);
  EXPECT_EQ(manager.production_copy(), oracle.production);
  // The quarantined permits never leaked into production.
  EXPECT_TRUE(spec::PolicyVerifier(policies).verify_network(manager.production_copy()).ok());
}

// ---------------------------------------------------------- observability --

/// The global journal/flight recorder are enabled per-test here; restore the
/// cheap disabled defaults so other suites see the seed behaviour.
struct ObservabilityGuard {
  ObservabilityGuard() {
    obs::EventJournal::global().clear();
    obs::FlightRecorder::global().reset();
  }
  ~ObservabilityGuard() {
    obs::EventJournal::global().set_enabled(false);
    obs::EventJournal::global().clear();
    obs::FlightRecorder::global().set_enabled(false);
    obs::FlightRecorder::global().reset();
    obs::SloTracker::global().reset();
  }
};

std::size_t count_events(const std::vector<obs::EventRecord>& events, obs::EventType type) {
  std::size_t count = 0;
  for (const obs::EventRecord& event : events) count += event.type == type ? 1 : 0;
  return count;
}

TEST(Observability, WorkerReplaysSessionContextAcrossPausedDrain) {
  // Submissions are staged while the worker sleeps; when the queue resumes,
  // the worker thread (which never opened any session) must still emit
  // journal events carrying each submission's ticket + session keys, because
  // the queue replays the captured ScopedContextFrame per entry.
  ObservabilityGuard guard;
  net::Network original = scen::build_enterprise();
  ServiceOptions options;
  options.journal_enabled = true;
  SessionManager manager(original, scen::enterprise_policies(original), options);
  manager.set_queue_paused(true);

  auto alice = manager.open(acl_ticket(31, "r1", "harden r1"), "alice");
  auto bob = manager.open(acl_ticket(32, "r3", "harden r3"), "bob");
  alice->run("acl r1 create OBS1");
  bob->run("acl r3 create OBS3");
  std::future<SubmitOutcome> fa = alice->submit();
  std::future<SubmitOutcome> fb = bob->submit();
  manager.set_queue_paused(false);
  SubmitOutcome oa = fa.get();
  SubmitOutcome ob = fb.get();
  manager.drain();

  for (const auto& [ticket, session] :
       {std::pair<std::int64_t, std::uint64_t>{31, alice->id()}, {32, bob->id()}}) {
    std::vector<obs::EventRecord> trail = obs::EventJournal::global().for_ticket(ticket);
    EXPECT_GE(count_events(trail, obs::EventType::SessionOpen), 1u) << ticket;
    EXPECT_GE(count_events(trail, obs::EventType::SessionSubmit), 1u) << ticket;
    EXPECT_GE(count_events(trail, obs::EventType::QueueEnqueue), 1u) << ticket;
    EXPECT_GE(count_events(trail, obs::EventType::QueueDequeue), 1u) << ticket;
    // The verdict is journaled by the worker under the replayed frame: it
    // must resolve the right session id, not 0 and not another session's.
    bool verdict_in_session = false;
    for (const obs::EventRecord& event : trail)
      if (event.type == obs::EventType::VerifyVerdict && event.session == session)
        verdict_in_session = true;
    EXPECT_TRUE(verdict_in_session) << "ticket " << ticket;
  }

  // Stage decomposition: both waited on the paused queue, and the timings
  // the service hands back are internally consistent.
  EXPECT_GT(oa.queue_wait_us, 0u);
  EXPECT_GT(ob.queue_wait_us, 0u);
  EXPECT_TRUE(oa.report.applied_any);
  EXPECT_TRUE(ob.report.applied_any);
}

TEST(Observability, InducedQuarantineFiresFlightRecorder) {
  ObservabilityGuard guard;
  net::Network original = scen::build_enterprise();
  ServiceOptions options;
  options.journal_enabled = true;
  SessionManager manager(original, scen::enterprise_policies(original), options);
  obs::FlightRecorder::global().configure({});  // memory-only dumps

  auto insider = manager.open(acl_ticket(77, "r9", "open the DMZ"), "mallory");
  insider->run("acl r9 DMZ_IN add 0 permit ip 10.0.20.0 0.0.0.255 10.0.8.0 0.0.0.255");
  SubmitOutcome outcome = insider->submit().get();
  insider->close();
  manager.drain();

  ASSERT_EQ(outcome.report.quarantined.size(), 1u);
  EXPECT_GE(obs::FlightRecorder::global().dumps(), 1u);
  std::string dump = obs::FlightRecorder::global().last_dump();
  ASSERT_FALSE(dump.empty());
  util::Json doc = util::Json::parse(dump);
  EXPECT_EQ(doc.at("reason").as_string(), "quarantine");
  EXPECT_DOUBLE_EQ(doc.at("ticket").as_number(), 77.0);
  // The dump embeds the offending ticket's own event trail, quarantine
  // included.
  bool saw_quarantine = false;
  for (const util::Json& event : doc.at("ticket_events").as_array())
    saw_quarantine |= event.at("type").as_string() == "quarantine";
  EXPECT_TRUE(saw_quarantine);
}

TEST(Observability, StatuszSnapshotIsParsableAndCurrent) {
  ObservabilityGuard guard;
  net::Network original = scen::build_enterprise();
  ServiceOptions options;
  options.journal_enabled = true;
  SessionManager manager(original, scen::enterprise_policies(original), options);

  auto session = manager.open(acl_ticket(5, "r2", "statusz probe"), "alice");
  session->run("acl r2 create SZ1");
  session->submit().get();
  session->close();
  manager.drain();

  util::Json doc = util::Json::parse(manager.statusz_json());
  EXPECT_DOUBLE_EQ(doc.at("sessions_opened").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("sessions_closed").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("active_sessions").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(doc.at("queue_depth").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(doc.at("submissions").as_number(), 1.0);
  EXPECT_GE(doc.at("audit_entries").as_number(), 1.0);
  EXPECT_TRUE(doc.at("journal").at("enabled").as_bool());
  EXPECT_GT(doc.at("journal").at("appended").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(doc.at("audit_ledger").at("replicas").as_number(), 3.0);
  EXPECT_GE(doc.at("audit_ledger").at("quorum_commits").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("audit_ledger").at("quorum_failures").as_number(), 0.0);
  EXPECT_TRUE(doc.at("slo").is_array());
  EXPECT_TRUE(doc.at("rolling").is_object());
}

TEST(AuditSink, RecordStampAndPublishAreAtomicAcrossFlush) {
  // Regression for the stamp-before-lock race: record() used to take its
  // global stamp *before* acquiring the shard mutex, so a writer could be
  // pre-empted between stamping and publishing while a flush drained a
  // later-stamped entry — the next flush then appended the earlier stamp
  // after it, and chain order no longer matched stamp order. The pause hook
  // holds writer A at exactly that point; with the stamp taken inside the
  // critical section, a concurrent flush must wait for A instead of
  // overtaking it. Two threads, fully deterministic; runs under TSan in CI.
  enforce::AuditSink sink(1);  // one shard: both writers and the flush contend
  std::atomic<bool> paused{false};
  std::atomic<bool> release{false};
  std::atomic<bool> first{true};
  sink.set_record_pause_for_test([&] {
    if (!first.exchange(false)) return;  // only writer A pauses
    paused = true;
    while (!release) std::this_thread::yield();
  });

  std::thread writer_a(
      [&] { sink.record(1, "writer-a", enforce::AuditCategory::Command, "stamped first"); });
  while (!paused) std::this_thread::yield();

  std::thread writer_b(
      [&] { sink.record(2, "writer-b", enforce::AuditCategory::Command, "stamped second"); });
  enforce::AuditLog chain;
  std::atomic<bool> flush_done{false};
  std::thread flusher([&] {
    sink.flush_into(chain);
    flush_done = true;
  });

  // Writer A sits between stamp and publish; the flush must not complete —
  // under the old ordering it could slip in here and seal writer B's later
  // stamp first.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(flush_done.load());

  release = true;
  writer_a.join();
  writer_b.join();
  flusher.join();
  sink.flush_into(chain);  // pick up whatever the first flush raced past

  ASSERT_EQ(chain.size(), 2u);
  EXPECT_TRUE(chain.verify_chain());
  EXPECT_EQ(chain.entries()[0].actor, "writer-a");
  EXPECT_EQ(chain.entries()[1].actor, "writer-b");
}

// ------------------------------------------------- multi-party approvals --

TEST(Approvals, SatisfiedMOfNEscalationAndSubmit) {
  net::Network original = scen::build_enterprise();
  SessionManager manager(original, scen::enterprise_policies(original), {});
  msp::Ticket ticket = acl_ticket(61, "r6", "border hardening needs a null-route");
  auto session = manager.open(ticket, "tech-honest");

  priv::ApprovalSet approvals;
  approvals.required = 2;
  approvals.approvals = {
      manager.attest_approval("customer-admin", priv::PrincipalRole::Customer, ticket),
      manager.attest_approval("msp-supervisor", priv::PrincipalRole::Msp, ticket),
  };
  priv::EscalationRequest request{priv::Action::StaticRouteAdd,
                                  priv::Resource::routes(DeviceId("r6")),
                                  "null-route a scanner prefix"};
  priv::EscalationResult escalation = session->request_escalation(request, approvals);
  EXPECT_EQ(escalation.verdict, priv::EscalationVerdict::RequiresAdmin);
  EXPECT_NE(escalation.reason.find("satisfied (2 valid approvals)"), std::string::npos);

  EXPECT_TRUE(session->run("route r6 add 203.0.113.0 255.255.255.0 10.1.16.1").ok);
  session->set_approvals(approvals);
  SubmitOutcome outcome = session->submit().get();
  session->close();
  manager.drain();

  EXPECT_EQ(outcome.report.applied_changes.size(), 1u);
  EXPECT_TRUE(outcome.report.quarantined.empty());
  EXPECT_TRUE(manager.enforcer().audit_intact());
}

TEST(Approvals, ColludingTechnicianQuarantinedBySubmitGate) {
  // The twin can be social-engineered (legacy single-admin escalation), but
  // the enforcer re-checks the m-of-n set inside the enclave: a
  // self-approved m=1 downgrade never reaches production.
  net::Network original = scen::build_enterprise();
  SessionManager manager(original, scen::enterprise_policies(original), {});
  msp::Ticket ticket = acl_ticket(62, "r6", "emergency reroute");
  auto session = manager.open(ticket, "tech-colluder");

  priv::EscalationRequest request{priv::Action::StaticRouteAdd,
                                  priv::Resource::routes(DeviceId("r6")), "trust me"};
  session->request_escalation(request, /*admin_approved=*/true);
  EXPECT_TRUE(session->run("route r6 add 198.18.0.0 255.255.0.0 10.1.16.1").ok);
  session->set_approvals(scen::colluding_approval_set(
      manager.enforcer().enclave(), "tech-colluder", twin::ticket_content_hash(ticket)));
  SubmitOutcome outcome = session->submit().get();
  session->close();
  manager.drain();

  EXPECT_TRUE(outcome.report.applied_changes.empty());
  ASSERT_EQ(outcome.report.quarantined.size(), 1u);
  const std::string& reason = outcome.report.quarantined[0].second;
  EXPECT_EQ(reason.find("approval: "), 0u);
  EXPECT_NE(reason.find("m-of-n downgrade"), std::string::npos);
  EXPECT_NE(reason.find("self-approval by tech-colluder"), std::string::npos);
  EXPECT_NE(reason.find("no customer-side approval"), std::string::npos);
  EXPECT_TRUE(manager.enforcer().audit_intact());
}

TEST(Approvals, MediationPicksStrongestPetitionRegardlessOfOrder) {
  net::Network original = scen::build_enterprise();
  SessionManager manager(original, scen::enterprise_policies(original), {});
  msp::Ticket weak_ticket = acl_ticket(63, "r6", "reroute A");
  msp::Ticket strong_ticket = acl_ticket(64, "r6", "reroute B");
  priv::EscalationRequest request{priv::Action::StaticRouteAdd,
                                  priv::Resource::routes(DeviceId("r6")), "overlapping route"};

  auto run_round = [&](bool swap) {
    auto weak = manager.open(weak_ticket, "tech-weak");
    auto strong = manager.open(strong_ticket, "tech-strong");
    priv::ApprovalSet weak_set = scen::colluding_approval_set(
        manager.enforcer().enclave(), "tech-weak", twin::ticket_content_hash(weak_ticket));
    priv::ApprovalSet strong_set;
    strong_set.required = 2;
    strong_set.approvals = {
        manager.attest_approval("customer-admin", priv::PrincipalRole::Customer, strong_ticket),
        manager.attest_approval("msp-supervisor", priv::PrincipalRole::Msp, strong_ticket),
    };
    std::vector<SessionManager::EscalationPetition> petitions = {
        {weak.get(), request, weak_set},
        {strong.get(), request, strong_set},
    };
    if (swap) std::swap(petitions[0], petitions[1]);
    std::vector<SessionManager::MediatedEscalation> mediated =
        manager.mediate_escalations(petitions);
    std::map<std::string, SessionManager::MediatedEscalation> by_actor;
    for (std::size_t i = 0; i < petitions.size(); ++i)
      by_actor[petitions[i].session->actor()] = mediated[i];
    weak->close();
    strong->close();
    return by_actor;
  };

  for (bool swap : {false, true}) {
    auto outcome = run_round(swap);
    EXPECT_EQ(outcome["tech-strong"].mediation.verdict, priv::MediationVerdict::Proceed)
        << "swap=" << swap;
    EXPECT_EQ(outcome["tech-weak"].mediation.verdict, priv::MediationVerdict::Deferred)
        << "swap=" << swap;
    EXPECT_EQ(outcome["tech-weak"].escalation.verdict, priv::EscalationVerdict::RequiresAdmin);
    EXPECT_NE(outcome["tech-weak"].escalation.reason.find("deferred"), std::string::npos);
  }
  manager.drain();
  EXPECT_TRUE(manager.enforcer().audit_intact());
}

TEST(Observability, ReplicaEquivocationJournalsTamperAlert) {
  ObservabilityGuard guard;
  net::Network original = scen::build_enterprise();
  ServiceOptions options;
  options.journal_enabled = true;
  SessionManager manager(original, scen::enterprise_policies(original), options);
  obs::FlightRecorder::global().configure({});  // memory-only dumps

  auto session = manager.open(acl_ticket(71, "r2", "benign change"), "alice");
  session->run("acl r2 create EQ1");
  session->submit().get();
  session->close();
  manager.drain();
  ASSERT_TRUE(manager.enforcer().audit_intact());

  enforce::ReplicatedAuditLedger& ledger = manager.enforcer().mutable_ledger_for_test();
  auto pristine = scen::equivocate_replica(ledger, 1, 0, "session #1 opened by ghost-tech");
  EXPECT_FALSE(manager.enforcer().audit_intact());
  std::size_t dumps_before = obs::FlightRecorder::global().dumps();
  manager.drain();  // post-drain integrity check journals the alert

  std::size_t alerts =
      count_events(obs::EventJournal::global().snapshot(), obs::EventType::TamperAlert);
  EXPECT_GE(alerts, 1u);
  bool equivocation_named = false;
  for (const obs::EventRecord& event : obs::EventJournal::global().snapshot())
    if (event.type == obs::EventType::TamperAlert)
      equivocation_named |= event.detail.find("equivocates") != std::string::npos;
  EXPECT_TRUE(equivocation_named);
  EXPECT_GT(obs::FlightRecorder::global().dumps(), dumps_before);
  util::Json dump = util::Json::parse(obs::FlightRecorder::global().last_dump());
  EXPECT_EQ(dump.at("reason").as_string(), "audit_tamper");

  scen::restore_replica(ledger, 1, std::move(pristine));
  EXPECT_TRUE(manager.enforcer().audit_intact());
}

TEST(Stress, LoadHarnessKeepsAuditIntact) {
  // The same harness tools/load_gen and the benchmarks use, at test scale.
  LoadSpec spec;
  spec.network = LoadNetwork::University;
  spec.technicians = 4;
  spec.tickets = 40;
  spec.violating_every = 10;
  LoadReport report = run_load(spec);
  EXPECT_EQ(report.tickets, 40u);
  EXPECT_TRUE(report.audit_intact);
  EXPECT_EQ(report.violating_tickets, 4u);
  EXPECT_GE(report.quarantined_changes, 4u);
  EXPECT_GT(report.applied_changes, 0u);
  EXPECT_GT(report.throughput_tps, 0.0);
  EXPECT_GE(report.p99_ms, report.p50_ms);
}

}  // namespace
}  // namespace heimdall::service
