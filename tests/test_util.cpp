// Unit tests for the utility substrate: strings, glob, SHA-256/HMAC, JSON,
// PRNG and the virtual clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/queue.hpp"
#include "util/random.hpp"
#include "util/sha256.hpp"
#include "util/strings.hpp"

namespace heimdall::util {
namespace {

// ---------------------------------------------------------------- strings --

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitWsDropsEmptyFields) {
  EXPECT_EQ(split_ws("  a \t b\nc  "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("interface Gi0/0", "interface"));
  EXPECT_FALSE(starts_with("int", "interface"));
  EXPECT_TRUE(ends_with("config.txt", ".txt"));
  EXPECT_FALSE(ends_with("txt", "config.txt"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("GigABit"), "gigabit"); }

TEST(Strings, ParseUintAcceptsValid) {
  EXPECT_EQ(parse_uint("0", 100), 0u);
  EXPECT_EQ(parse_uint("42", 100), 42u);
  EXPECT_EQ(parse_uint("100", 100), 100u);
}

TEST(Strings, ParseUintRejectsInvalid) {
  EXPECT_THROW(parse_uint("", 100), ParseError);
  EXPECT_THROW(parse_uint("-1", 100), ParseError);
  EXPECT_THROW(parse_uint("1a", 100), ParseError);
  EXPECT_THROW(parse_uint("101", 100), ParseError);
  EXPECT_THROW(parse_uint("99999999999999999999999", 100), ParseError);
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool matches;
};

class GlobTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobTest, Matches) {
  const GlobCase& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.matches)
      << "pattern='" << c.pattern << "' text='" << c.text << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobTest,
    ::testing::Values(
        GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
        GlobCase{"", "", true}, GlobCase{"", "x", false},
        GlobCase{"abc", "abc", true}, GlobCase{"abc", "abd", false},
        GlobCase{"a*c", "abc", true}, GlobCase{"a*c", "ac", true},
        GlobCase{"a*c", "abdc", true}, GlobCase{"a*c", "abcd", false},
        GlobCase{"show-*", "show-config", true}, GlobCase{"show-*", "ping", false},
        GlobCase{"r?", "r1", true}, GlobCase{"r?", "r12", false},
        GlobCase{"*-edit", "acl-edit", true}, GlobCase{"*e*t*", "enforcement", true},
        GlobCase{"**", "xy", true}, GlobCase{"a**b", "ab", true},
        GlobCase{"Gi0/?", "Gi0/1", true}, GlobCase{"Gi0/?", "Gi0/11", false}));

// ----------------------------------------------------------------- sha256 --

TEST(Sha256, NistVectors) {
  // FIPS 180-4 reference vectors.
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(to_hex(hasher.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (std::size_t cut = 0; cut <= data.size(); cut += 7) {
    Sha256 hasher;
    hasher.update(data.substr(0, cut));
    hasher.update(data.substr(cut));
    EXPECT_EQ(hasher.finish(), Sha256::hash(data)) << "cut=" << cut;
  }
}

TEST(Sha256, BoundaryLengths) {
  // Padding boundaries: 55, 56, 63, 64, 65 bytes.
  for (std::size_t length : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    std::string data(length, 'x');
    Sha256 split_hasher;
    split_hasher.update(data.substr(0, length / 2));
    split_hasher.update(data.substr(length / 2));
    EXPECT_EQ(split_hasher.finish(), Sha256::hash(data)) << "length=" << length;
  }
}

TEST(Sha256, ReuseAfterFinishThrows) {
  Sha256 hasher;
  hasher.update("x");
  hasher.finish();
  EXPECT_THROW(hasher.update("y"), InvariantError);
  EXPECT_THROW(hasher.finish(), InvariantError);
}

TEST(Hmac, Rfc4231Vectors) {
  // RFC 4231 test case 2.
  EXPECT_EQ(to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // RFC 4231 test case 1.
  std::string key(20, '\x0b');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  std::string key(131, '\xaa');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDiffer) {
  EXPECT_NE(hmac_sha256("k1", "msg"), hmac_sha256("k2", "msg"));
  EXPECT_NE(hmac_sha256("k", "msg1"), hmac_sha256("k", "msg2"));
}

// ------------------------------------------------------------------- json --

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(Json, ParsesNested) {
  Json doc = Json::parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  EXPECT_EQ(doc.at("a").as_array().size(), 3u);
  EXPECT_TRUE(doc.at("a").as_array()[2].at("b").as_bool());
  EXPECT_TRUE(doc.at("c").at("d").is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), ParseError);
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\":}"), ParseError);
  EXPECT_THROW(Json::parse("tru"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::parse("1 2"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), ParseError);
}

TEST(Json, DumpRoundTrips) {
  const char* documents[] = {
      R"({"privileges":[{"effect":"allow","actions":["ping"],"resource":{"device":"r1"}}]})",
      R"([1,2,[3,[4]],{"x":true,"y":null}])",
      R"("plain string")",
      R"({})",
      R"([])",
  };
  for (const char* text : documents) {
    Json once = Json::parse(text);
    Json twice = Json::parse(once.dump());
    EXPECT_EQ(once, twice) << text;
    // Pretty-printed form parses back identically too.
    EXPECT_EQ(Json::parse(once.dump(2)), once) << text;
  }
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json doc;
  doc.set("zeta", Json(1));
  doc.set("alpha", Json(2));
  EXPECT_EQ(doc.dump(), R"({"zeta":1,"alpha":2})");
  doc.set("zeta", Json(3));  // update in place, order unchanged
  EXPECT_EQ(doc.dump(), R"({"zeta":3,"alpha":2})");
}

TEST(Json, TypeErrorsThrow) {
  Json doc = Json::parse("[1]");
  EXPECT_THROW(doc.as_object(), ParseError);
  EXPECT_THROW(doc.as_string(), ParseError);
  EXPECT_THROW(doc.as_array()[0].as_bool(), ParseError);
}

TEST(Json, IntegersDumpWithoutDecimals) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
}

// -------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_difference = false;
  for (int i = 0; i < 10; ++i) any_difference |= (a.next() != b.next());
  EXPECT_TRUE(any_difference);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_THROW(rng.next_below(0), InvariantError);
}

TEST(Rng, NextInInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.next_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

// ------------------------------------------------------------------ clock --

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(100);
  clock.advance(0);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  EXPECT_THROW(clock.advance(-1), InvariantError);
}

TEST(Stopwatch, MeasuresNonNegative) {
  Stopwatch watch;
  EXPECT_GE(watch.elapsed_ms(), 0.0);
  watch.restart();
  EXPECT_GE(watch.elapsed_ms(), 0.0);
}

// ------------------------------------------------------------------ queue --

TEST(BlockingQueue, PopsInFifoOrderUpToMax) {
  BlockingQueue<int> queue;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_EQ(queue.size(), 5u);
  EXPECT_EQ(queue.pop_some(3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.pop_some(10), (std::vector<int>{3, 4}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BlockingQueue, PauseGateAccumulatesOneBatch) {
  BlockingQueue<int> queue;
  queue.set_paused(true);
  std::vector<int> popped;
  std::thread consumer([&] { popped = queue.pop_some(16); });
  queue.push(1);
  queue.push(2);
  queue.push(3);
  // The consumer must still be blocked: nothing can have been popped while
  // paused, so the queue still holds everything we pushed.
  EXPECT_EQ(queue.size(), 3u);
  queue.set_paused(false);
  consumer.join();
  EXPECT_EQ(popped, (std::vector<int>{1, 2, 3}));
}

TEST(BlockingQueue, CloseDrainsThenStops) {
  BlockingQueue<int> queue;
  EXPECT_TRUE(queue.push(7));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(8));  // dropped, not queued
  EXPECT_EQ(queue.pop_some(4), (std::vector<int>{7}));
  // Closed and drained: pop_some returns empty instead of blocking.
  EXPECT_TRUE(queue.pop_some(4).empty());
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> queue;
  std::vector<int> popped{-1};
  std::thread consumer([&] { popped = queue.pop_some(1); });
  queue.close();
  consumer.join();
  EXPECT_TRUE(popped.empty());
}

TEST(BlockingQueue, ConcurrentProducersLoseNothing) {
  BlockingQueue<int> queue;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(p * kPerProducer + i);
    });
  }
  std::vector<int> all;
  std::thread consumer([&] {
    while (all.size() < kProducers * kPerProducer) {
      std::vector<int> got = queue.pop_some(32);
      all.insert(all.end(), got.begin(), got.end());
    }
  });
  for (std::thread& producer : producers) producer.join();
  consumer.join();
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (int i = 0; i < kProducers * kPerProducer; ++i) EXPECT_EQ(all[i], i);
}

}  // namespace
}  // namespace heimdall::util
