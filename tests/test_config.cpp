// Unit tests for the config layer: serializer/parser round-trips and the
// semantic differ + change replay.
#include <gtest/gtest.h>

#include "config/diff.hpp"
#include "config/parse.hpp"
#include "config/serialize.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"
#include "util/error.hpp"

namespace heimdall::cfg {
namespace {

using namespace heimdall::net;

Device sample_router() {
  Device device(DeviceId("r1"), DeviceKind::Router);
  device.secrets().enable_password = "hash123";
  device.secrets().snmp_community = "comm";
  device.secrets().ipsec_key = "psk";
  device.vlans() = {10, 20};

  Interface uplink;
  uplink.id = InterfaceId("Gi0/0");
  uplink.description = "to r2";
  uplink.address = InterfaceAddress{Ipv4Address::parse("10.1.12.1"), 30};
  uplink.acl_in = "EDGE";
  uplink.ospf_cost = 25;
  device.add_interface(uplink);

  Interface access;
  access.id = InterfaceId("Fa0/1");
  access.mode = SwitchportMode::Access;
  access.access_vlan = 10;
  access.shutdown = true;
  device.add_interface(access);

  Interface trunk;
  trunk.id = InterfaceId("Fa0/24");
  trunk.mode = SwitchportMode::Trunk;
  trunk.trunk_allowed = {10, 20};
  device.add_interface(trunk);

  Acl acl;
  acl.name = "EDGE";
  acl.entries.push_back(parse_acl_entry("permit tcp 10.0.1.0 0.0.0.255 any eq 443"));
  acl.entries.push_back(parse_acl_entry("deny ip any any"));
  device.add_acl(acl);

  StaticRoute route;
  route.prefix = Ipv4Prefix::parse("0.0.0.0/0");
  route.next_hop = Ipv4Address::parse("10.1.12.2");
  device.static_routes().push_back(route);

  OspfProcess ospf;
  ospf.process_id = 1;
  ospf.router_id = Ipv4Address::parse("1.1.1.1");
  ospf.networks.push_back({Ipv4Prefix::parse("10.0.0.0/8"), 0});
  ospf.passive_interfaces.push_back(InterfaceId("Fa0/1"));
  device.ospf() = ospf;

  return device;
}

// ------------------------------------------------------------ ACL parsing --

TEST(AclParse, AllForms) {
  AclEntry entry = parse_acl_entry("permit tcp 10.0.1.0 0.0.0.255 any eq 443");
  EXPECT_EQ(entry.action, AclEntry::Action::Permit);
  EXPECT_EQ(entry.protocol, IpProtocol::Tcp);
  EXPECT_EQ(entry.src.to_string(), "10.0.1.0/24");
  EXPECT_EQ(entry.dst.length(), 0u);
  EXPECT_EQ(entry.dst_ports, PortRange::exactly(443));

  entry = parse_acl_entry("deny ip host 10.0.0.5 host 10.0.0.9");
  EXPECT_EQ(entry.src.to_string(), "10.0.0.5/32");
  EXPECT_EQ(entry.dst.to_string(), "10.0.0.9/32");

  entry = parse_acl_entry("permit udp any range 5000 6000 10.2.0.0 0.0.255.255");
  EXPECT_EQ(entry.src_ports, (PortRange{5000, 6000}));
  EXPECT_EQ(entry.dst.to_string(), "10.2.0.0/16");
}

TEST(AclParse, RoundTripsItsOwnRendering) {
  for (const char* text :
       {"permit tcp 10.0.1.0 0.0.0.255 any eq 443", "deny ip any any",
        "permit icmp host 1.2.3.4 10.0.0.0 0.255.255.255",
        "permit udp any range 1 100 any eq 53", "deny tcp any any range 6000 7000"}) {
    AclEntry entry = parse_acl_entry(text);
    EXPECT_EQ(parse_acl_entry(entry.to_string()), entry) << text;
  }
}

TEST(AclParse, RejectsMalformed) {
  for (const char* bad :
       {"", "permit", "allow ip any any", "permit xyz any any", "permit ip any",
        "permit ip host any", "permit tcp any eq any any", "permit ip any any trailing",
        "permit tcp any range 7 3 any"}) {
    EXPECT_THROW(parse_acl_entry(bad), util::ParseError) << bad;
  }
}

// ------------------------------------------------------------- round trip --

TEST(ConfigRoundTrip, SampleRouter) {
  Device device = sample_router();
  std::string text = serialize_device(device);
  Device parsed = parse_device(text);
  EXPECT_EQ(parsed, device);
  // Second generation is byte-identical (canonical form).
  EXPECT_EQ(serialize_device(parsed), text);
}

TEST(ConfigRoundTrip, EnterpriseNetwork) {
  Network network = scen::build_enterprise();
  for (const Device& device : network.devices()) {
    Device parsed = parse_device(serialize_device(device));
    EXPECT_EQ(parsed, device) << device.id().str();
  }
}

TEST(ConfigRoundTrip, UniversityNetworkBundle) {
  Network network = scen::build_university();
  Network parsed = parse_network(serialize_network(network));
  ASSERT_EQ(parsed.devices().size(), network.devices().size());
  for (const Device& device : network.devices()) {
    EXPECT_EQ(*parsed.find_device(device.id()), device) << device.id().str();
  }
}

TEST(ConfigRoundTrip, TopologySerialization) {
  Network network = scen::build_enterprise();
  std::string text = serialize_topology(network.topology());

  // Rebuild: same devices, re-wire from the text.
  Network rewired("copy");
  for (const Device& device : network.devices()) rewired.add_device(device);
  parse_topology(text, rewired);
  EXPECT_EQ(rewired.topology(), network.topology());
}

TEST(ConfigParse, ReportsLineNumbers) {
  try {
    parse_device("hostname r1\nbogus line here\n");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos) << error.what();
  }
}

TEST(ConfigParse, SkipsBoilerplate) {
  Device device = parse_device(
      "hostname r1\n"
      "! heimdall-device-kind: router\n"
      "version 15.2\n"
      "service timestamps log datetime msec\n"
      "no ip domain-lookup\n"
      "ip cef\n"
      "logging buffered 64000\n"
      "line vty 0 4\n"
      " login local\n"
      " transport input ssh\n"
      "end\n");
  EXPECT_EQ(device.id().str(), "r1");
  EXPECT_TRUE(device.interfaces().empty());
}

TEST(ConfigParse, LineCountIsStable) {
  Network network = scen::build_enterprise();
  std::size_t count = config_line_count(network);
  EXPECT_GT(count, 500u);
  EXPECT_EQ(config_line_count(network), count);  // deterministic
}

// ------------------------------------------------------------------- diff --

TEST(Diff, IdenticalDevicesYieldNoChanges) {
  Device device = sample_router();
  EXPECT_TRUE(diff_devices(device, device).empty());
}

TEST(Diff, DetectsEveryFieldKind) {
  Device before = sample_router();
  Device after = before;

  after.interface(InterfaceId("Fa0/1")).shutdown = false;
  after.interface(InterfaceId("Gi0/0")).address = InterfaceAddress{Ipv4Address::parse("10.1.12.5"), 30};
  after.interface(InterfaceId("Gi0/0")).acl_in = "";
  after.interface(InterfaceId("Fa0/1")).access_vlan = 20;
  after.interface(InterfaceId("Gi0/0")).ospf_cost = std::nullopt;
  after.find_acl("EDGE")->entries.insert(after.find_acl("EDGE")->entries.begin(),
                                         parse_acl_entry("permit icmp any any"));
  after.static_routes().clear();
  after.ospf()->networks.push_back({Ipv4Prefix::parse("192.168.0.0/16"), 1});
  after.vlans().push_back(30);
  after.secrets().enable_password = "newhash";

  auto changes = diff_devices(before, after);
  auto has = [&](const char* fragment) {
    for (const ConfigChange& change : changes) {
      if (change.summary().find(fragment) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("no shutdown"));
  EXPECT_TRUE(has("address"));
  EXPECT_TRUE(has("access-group in"));
  EXPECT_TRUE(has("switchport"));
  EXPECT_TRUE(has("ospf cost"));
  EXPECT_TRUE(has("insert@0"));
  EXPECT_TRUE(has("static route remove"));
  EXPECT_TRUE(has("ospf network add"));
  EXPECT_TRUE(has("vlan 30 declared"));
  EXPECT_TRUE(has("secret changed: enable_password"));
  EXPECT_EQ(changes.size(), 10u);
}

TEST(Diff, ReplayReproducesAfterState) {
  Network before = scen::build_enterprise();
  Network after = before;
  // A few scattered edits.
  after.device(DeviceId("r7")).interface(InterfaceId("Fa0/2")).access_vlan = 10;
  after.device(DeviceId("r9")).find_acl("DMZ_IN")->entries.insert(
      after.device(DeviceId("r9")).find_acl("DMZ_IN")->entries.begin(),
      parse_acl_entry("permit icmp 10.0.20.0 0.0.0.255 10.0.7.0 0.0.0.255"));
  after.device(DeviceId("r6")).interface(InterfaceId("Gi0/0")).ospf_cost = 50;

  auto changes = diff_networks(before, after);
  EXPECT_EQ(changes.size(), 3u);

  Network replayed = before;
  apply_changes(replayed, changes);
  EXPECT_EQ(replayed, after);
}

TEST(Diff, AclLcsMinimalEdits) {
  Device before(DeviceId("r1"), DeviceKind::Router);
  Acl acl;
  acl.name = "A";
  acl.entries = {parse_acl_entry("permit icmp any any"), parse_acl_entry("deny ip any any")};
  before.add_acl(acl);

  Device after = before;
  // Insert one entry in the middle: exactly one AclEntryAdd at index 1.
  after.find_acl("A")->entries.insert(after.find_acl("A")->entries.begin() + 1,
                                      parse_acl_entry("permit tcp any any eq 22"));
  auto changes = diff_devices(before, after);
  ASSERT_EQ(changes.size(), 1u);
  const auto* add = std::get_if<AclEntryAdd>(&changes[0].detail);
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->index, 1u);
}

TEST(Diff, AclModifiedEntryBecomesRemoveThenAdd) {
  Device before(DeviceId("r1"), DeviceKind::Router);
  Acl acl;
  acl.name = "A";
  acl.entries = {parse_acl_entry("deny ip any any")};
  before.add_acl(acl);

  Device after = before;
  after.find_acl("A")->entries[0] = parse_acl_entry("permit ip any any");
  auto changes = diff_devices(before, after);
  ASSERT_EQ(changes.size(), 2u);

  // Replaying must reproduce the after state regardless of remove/add order.
  Device replay_target = before;
  Network scratch("scratch");
  scratch.add_device(replay_target);
  for (const ConfigChange& change : changes) apply_change(scratch, change);
  EXPECT_EQ(scratch.device(DeviceId("r1")), after);
}

TEST(Diff, AclCreateAndDelete) {
  Device before(DeviceId("r1"), DeviceKind::Router);
  Acl old_acl;
  old_acl.name = "OLD";
  before.add_acl(old_acl);

  Device after(DeviceId("r1"), DeviceKind::Router);
  Acl new_acl;
  new_acl.name = "NEW";
  new_acl.entries.push_back(parse_acl_entry("permit ip any any"));
  after.add_acl(new_acl);

  auto changes = diff_devices(before, after);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_NE(std::get_if<AclDelete>(&changes[0].detail), nullptr);
  EXPECT_NE(std::get_if<AclCreate>(&changes[1].detail), nullptr);
}

TEST(Diff, RejectsDeviceIdMismatchAndHardwareChanges) {
  Device r1(DeviceId("r1"), DeviceKind::Router);
  Device r2(DeviceId("r2"), DeviceKind::Router);
  EXPECT_THROW(diff_devices(r1, r2), util::InvariantError);

  Device with_iface = r1;
  Interface iface;
  iface.id = InterfaceId("Gi0/9");
  with_iface.add_interface(iface);
  EXPECT_THROW(diff_devices(r1, with_iface), util::InvariantError);
  EXPECT_THROW(diff_devices(with_iface, r1), util::InvariantError);
}

TEST(Diff, ApplyChangeValidatesState) {
  Network network("n");
  Device device(DeviceId("r1"), DeviceKind::Router);
  network.add_device(device);

  // Removing an absent route fails loudly.
  StaticRoute route;
  route.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  route.next_hop = Ipv4Address::parse("10.1.1.1");
  EXPECT_THROW(apply_change(network, {DeviceId("r1"), StaticRouteRemove{route}}),
               util::InvariantError);
  // ACL entry remove with mismatching recorded entry fails.
  Acl acl;
  acl.name = "A";
  acl.entries.push_back(parse_acl_entry("deny ip any any"));
  network.device(DeviceId("r1")).add_acl(acl);
  EXPECT_THROW(apply_change(network, {DeviceId("r1"),
                                      AclEntryRemove{"A", 0, parse_acl_entry("permit ip any any")}}),
               util::InvariantError);
  // Unknown device.
  EXPECT_THROW(apply_change(network, {DeviceId("ghost"), VlanDeclare{10}}),
               util::NotFoundError);
}

TEST(Diff, SecretChangesCarryNoValues) {
  Device before = sample_router();
  Device after = before;
  after.secrets().ipsec_key = "super-secret-new-key";
  auto changes = diff_devices(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].summary().find("super-secret"), std::string::npos);
}

// ------------------------------------------------------------------ invert --

/// apply(change); apply(invert_change(pre, change)) must restore `base`
/// bit-for-bit (operator== covers every field including vector order).
void expect_invert_round_trip(const Network& base, const ConfigChange& change) {
  Network network = base;
  ConfigChange inverse = invert_change(network, change);
  apply_change(network, change);
  apply_change(network, inverse);
  EXPECT_EQ(network, base) << "round trip failed for: " << change.summary();
}

TEST(Invert, RoundTripsEveryChangeKind) {
  Network base = scen::build_enterprise();
  // Give r1 two static routes so positional restore is observable.
  StaticRoute route_a;
  route_a.prefix = Ipv4Prefix::parse("192.0.2.0/24");
  route_a.next_hop = Ipv4Address::parse("10.1.12.2");
  StaticRoute route_b;
  route_b.prefix = Ipv4Prefix::parse("198.51.100.0/24");
  route_b.next_hop = Ipv4Address::parse("10.1.12.2");
  base.device(DeviceId("r1")).static_routes() = {route_a, route_b};
  StaticRoute route_new;
  route_new.prefix = Ipv4Prefix::parse("203.0.113.0/24");
  route_new.next_hop = Ipv4Address::parse("10.1.12.2");

  const DeviceId r1("r1"), r6("r6"), r7("r7"), r9("r9");
  AclEntry permit = parse_acl_entry("permit ip 10.0.10.0 0.0.0.255 10.0.7.0 0.0.0.255");
  const Acl& dmz_in = *base.device(r9).find_acl("DMZ_IN");
  Acl fresh;
  fresh.name = "TMP";
  fresh.entries.push_back(permit);
  const auto& r6_ospf_networks = base.device(r6).ospf()->networks;
  ASSERT_GE(r6_ospf_networks.size(), 2u);

  std::vector<ConfigChange> cases = {
      {r6, InterfaceAdminChange{InterfaceId("Gi0/0"), false, true}},
      {r6, OspfCostChange{InterfaceId("Gi0/0"),
                          base.device(r6).interface(InterfaceId("Gi0/0")).ospf_cost, 42u}},
      {r7, SwitchportChange{InterfaceId("Fa0/1"), SwitchportMode::Access,
                            SwitchportMode::Access, 10, 20, {}, {}}},
      {r9, InterfaceAclBindingChange{InterfaceId("Gi0/0"), AclDirection::In, "DMZ_IN", ""}},
      {r9, AclEntryAdd{"DMZ_IN", 0, permit}},
      {r9, AclEntryAdd{"DMZ_IN", 99, permit}},  // clamped append
      {r9, AclEntryRemove{"DMZ_IN", 0, dmz_in.entries.front()}},
      {r9, AclCreate{fresh, std::nullopt}},
      {r9, AclDelete{"DMZ_IN"}},
      {r1, StaticRouteAdd{route_new, std::nullopt}},  // duplicate-free append
      {r1, StaticRouteRemove{route_a}},             // restores at position 0
      {r6, OspfNetworkAdd{OspfNetwork{Ipv4Prefix::parse("203.0.113.0/24"), 0}, std::nullopt}},
      {r6, OspfNetworkRemove{r6_ospf_networks.front(), std::nullopt}},  // middle restore
      {r6, OspfProcessChange{base.device(r6).ospf(), std::nullopt}},
      {r7, VlanDeclare{999, std::nullopt}},
      {r7, VlanRemove{10}},  // first of {10, 20}: restores position 0
      {r6, SecretChange{"enable_password", false}},
  };
  for (const ConfigChange& change : cases) expect_invert_round_trip(base, change);
}

TEST(Invert, InverseOfInverseIsOriginalSequence) {
  // Applying a whole changeset then the inverses in reverse order restores
  // the network exactly (the enforcer's undo-log replay depends on this).
  Network base = scen::build_enterprise();
  AclEntry permit = parse_acl_entry("permit ip 10.0.10.0 0.0.0.255 10.0.7.0 0.0.0.255");
  std::vector<ConfigChange> session = {
      {DeviceId("r9"), AclEntryAdd{"DMZ_IN", 0, permit}},
      {DeviceId("r6"), OspfCostChange{InterfaceId("Gi0/0"),
                                      base.device(DeviceId("r6"))
                                          .interface(InterfaceId("Gi0/0"))
                                          .ospf_cost,
                                      7u}},
      {DeviceId("r7"), VlanDeclare{777, std::nullopt}},
      {DeviceId("r6"), SecretChange{"snmp_community", false}},
  };
  Network network = base;
  std::vector<ConfigChange> undo;
  for (const ConfigChange& change : session) {
    undo.push_back(invert_change(network, change));
    apply_change(network, change);
  }
  EXPECT_NE(network, base);
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) apply_change(network, *it);
  EXPECT_EQ(network, base);
}

TEST(Invert, ThrowsWhenChangeCannotApply) {
  Network network = scen::build_enterprise();
  // Unknown device.
  EXPECT_THROW(invert_change(network, {DeviceId("ghost"), VlanDeclare{10, std::nullopt}}),
               util::NotFoundError);
  // Removing an absent static route has no inverse.
  StaticRoute absent;
  absent.prefix = Ipv4Prefix::parse("203.0.113.0/24");
  absent.next_hop = Ipv4Address::parse("10.1.1.1");
  EXPECT_THROW(invert_change(network, {DeviceId("r1"), StaticRouteRemove{absent}}),
               util::InvariantError);
  // Unknown ACL.
  AclEntry entry = parse_acl_entry("deny ip any any");
  EXPECT_THROW(invert_change(network, {DeviceId("r1"), AclEntryAdd{"NOPE", 0, entry}}),
               util::NotFoundError);
  // Reverting a secret that was never rotated.
  EXPECT_THROW(
      apply_change(network, {DeviceId("r6"), SecretChange{"enable_password", true}}),
      util::InvariantError);
}

TEST(Invert, SecretRevertPopsOneRotation) {
  Network network = scen::build_enterprise();
  std::string original = network.device(DeviceId("r6")).secrets().enable_password;
  ConfigChange rotate{DeviceId("r6"), SecretChange{"enable_password", false}};
  ConfigChange inverse = invert_change(network, rotate);
  apply_change(network, rotate);
  EXPECT_EQ(network.device(DeviceId("r6")).secrets().enable_password, original + "*");
  apply_change(network, inverse);
  EXPECT_EQ(network.device(DeviceId("r6")).secrets().enable_password, original);
}

}  // namespace
}  // namespace heimdall::cfg
