// Tests pinning the evaluation scenarios to the paper's Table 1 and the
// pilot-study issue semantics (inject really breaks, fix really repairs).
#include <gtest/gtest.h>

#include "config/serialize.hpp"
#include "dataplane/trace.hpp"
#include "msp/workflow.hpp"
#include "scenarios/enterprise.hpp"
#include "scenarios/university.hpp"

namespace heimdall::scen {
namespace {

using namespace heimdall::net;

// ----------------------------------------------------------------- table 1 --

TEST(Table1, EnterpriseShape) {
  Network network = build_enterprise();
  EXPECT_EQ(network.count(DeviceKind::Router), 9u);
  EXPECT_EQ(network.count(DeviceKind::Host), 9u);
  EXPECT_EQ(network.topology().links().size(), 22u);
  EXPECT_EQ(enterprise_policies(network).size(), 21u);
  EXPECT_GT(cfg::config_line_count(network), 500u);
  EXPECT_NO_THROW(network.validate());
}

TEST(Table1, UniversityShape) {
  Network network = build_university();
  EXPECT_EQ(network.count(DeviceKind::Router), 13u);
  EXPECT_EQ(network.count(DeviceKind::Host), 17u);
  EXPECT_EQ(network.topology().links().size(), 92u);
  EXPECT_EQ(university_policies(network).size(), 175u);
  EXPECT_GT(cfg::config_line_count(network), 1200u);
  EXPECT_NO_THROW(network.validate());
}

TEST(Table1, BuildersAreDeterministic) {
  EXPECT_EQ(build_enterprise(), build_enterprise());
  EXPECT_EQ(build_university(), build_university());
  Network enterprise = build_enterprise();
  EXPECT_EQ(enterprise_policies(enterprise), enterprise_policies(enterprise));
}

TEST(Table1, UniversityMultiAreaWorks) {
  Network network = build_university();
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  // uh14 (u12, area 1) and uh1 (u1, area 0) can talk across the ABRs.
  EXPECT_TRUE(dp::trace_hosts(network, dataplane, DeviceId("uh1"), DeviceId("uh14")).delivered());
  EXPECT_TRUE(dp::trace_hosts(network, dataplane, DeviceId("uh14"), DeviceId("uh1")).delivered());
  // Area-1 adjacency exists on the u12-u13 link.
  bool area1_adjacency = false;
  for (const dp::OspfAdjacency& adjacency : dataplane.ospf_adjacencies())
    area1_adjacency |= adjacency.area == 1;
  EXPECT_TRUE(area1_adjacency);
}

TEST(Table1, UniversityGuardAclsEnforced) {
  Network network = build_university();
  dp::Dataplane dataplane = dp::Dataplane::compute(network);
  // uh15 guarded by SEC_IN: uh1/uh3/uh5 in, others out.
  EXPECT_TRUE(dp::trace_hosts(network, dataplane, DeviceId("uh1"), DeviceId("uh15")).delivered());
  EXPECT_TRUE(dp::trace_hosts(network, dataplane, DeviceId("uh5"), DeviceId("uh15")).delivered());
  EXPECT_EQ(dp::trace_hosts(network, dataplane, DeviceId("uh8"), DeviceId("uh15")).disposition,
            dp::Disposition::DeniedInbound);
  // uh11 guarded by ENG_IN.
  EXPECT_TRUE(dp::trace_hosts(network, dataplane, DeviceId("uh7"), DeviceId("uh11")).delivered());
  EXPECT_EQ(dp::trace_hosts(network, dataplane, DeviceId("uh4"), DeviceId("uh11")).disposition,
            dp::Disposition::DeniedInbound);
  // Transit through the guarded routers is unaffected (permit any any tail).
  EXPECT_TRUE(dp::trace_hosts(network, dataplane, DeviceId("uh1"), DeviceId("uh8")).delivered());
}

// ------------------------------------------------------------------ issues --

struct IssueCase {
  std::string network_name;
  std::string issue_key;
};

class IssueTest : public ::testing::TestWithParam<IssueCase> {
 protected:
  Network network() const {
    return GetParam().network_name == "enterprise" ? build_enterprise() : build_university();
  }
  IssueSpec issue() const {
    bool enterprise = GetParam().network_name == "enterprise";
    auto issues = enterprise ? enterprise_issues() : university_issues();
    auto extended = enterprise ? enterprise_extended_issues() : university_extended_issues();
    issues.insert(issues.end(), std::make_move_iterator(extended.begin()),
                  std::make_move_iterator(extended.end()));
    for (IssueSpec& candidate : issues)
      if (candidate.key == GetParam().issue_key) return candidate;
    throw std::runtime_error("no such issue");
  }
};

TEST_P(IssueTest, InjectBreaksOrIsPlanned) {
  Network production = network();
  IssueSpec spec = issue();
  bool healthy_before = spec.resolved(production);
  spec.inject(production);
  if (spec.key == "isp") {
    // Planned change: network stays healthy, the goal state differs.
    EXPECT_FALSE(healthy_before);  // goal (path via preferred uplink) not yet met
  } else {
    EXPECT_TRUE(healthy_before);
    EXPECT_FALSE(spec.resolved(production)) << "injection must break the pair";
  }
}

TEST_P(IssueTest, RootCauseDeviceExists) {
  Network production = network();
  IssueSpec spec = issue();
  EXPECT_TRUE(production.has_device(spec.root_cause));
  for (const DeviceId& affected : spec.ticket.affected)
    EXPECT_TRUE(production.has_device(affected));
}

TEST_P(IssueTest, FixScriptRepairsViaHeimdall) {
  Network production = network();
  IssueSpec spec = issue();
  spec.inject(production);

  auto policies = GetParam().network_name == "enterprise" ? enterprise_policies(network())
                                                          : university_policies(network());
  enforce::PolicyEnforcer enforcer(spec::PolicyVerifier(policies),
                                   enforce::SimulatedEnclave("v1", "hw"));
  msp::Technician technician;
  msp::WorkflowResult result = msp::run_heimdall_workflow(
      production, enforcer, spec.ticket, spec.fix_script, technician, spec.resolved);
  EXPECT_TRUE(result.changes_applied);
  EXPECT_TRUE(result.issue_resolved);
  EXPECT_EQ(result.commands_denied, 0u);
}

TEST_P(IssueTest, HeimdallSliceContainsRootCause) {
  Network production = network();
  IssueSpec spec = issue();
  spec.inject(production);
  dp::Dataplane dataplane = dp::Dataplane::compute(production);
  twin::Slice slice = twin::compute_slice(production, dataplane, spec.ticket,
                                          twin::SliceStrategy::TaskDriven);
  EXPECT_TRUE(slice.contains(spec.root_cause));
  EXPECT_LT(slice.devices.size(), production.devices().size())
      << "task-driven slice should not expose the whole network";
}

INSTANTIATE_TEST_SUITE_P(
    AllIssues, IssueTest,
    ::testing::Values(IssueCase{"enterprise", "vlan"}, IssueCase{"enterprise", "ospf"},
                      IssueCase{"enterprise", "isp"}, IssueCase{"enterprise", "acl"},
                      IssueCase{"enterprise", "route"}, IssueCase{"university", "vlan"},
                      IssueCase{"university", "ospf"}, IssueCase{"university", "isp"},
                      IssueCase{"university", "acl"}, IssueCase{"university", "route"}),
    [](const ::testing::TestParamInfo<IssueCase>& info) {
      return info.param.network_name + "_" + info.param.issue_key;
    });

}  // namespace
}  // namespace heimdall::scen
